//! Precomputed per-batch launch schedule: the zero-allocation hot path.
//!
//! The seed engine recomputed everything per level of every window batch —
//! per-thread `gate_fanin` CSR walks inside the kernel closure, a
//! `gates × fanin × windows` working-set scan, and fresh `Vec<AtomicU64>` /
//! `vec![0u32; threads]` scratch allocations per level — and always issued
//! two launches per level, even for near-empty levels where launch overhead
//! dominates (the paper's Tables 5–6 profile exactly these phases).
//!
//! [`LevelSchedule`] is built once per window batch and gives
//! `run_window_batch` everything flat:
//!
//! * per-level thread tables (`gates`, `out_sigs`, `pin_base`, `pin_sigs`)
//!   so a kernel thread resolves its gate, output signal and input-pointer
//!   slots by dense indexing instead of walking graph CSR per invocation;
//! * per-level working-set sizes computed incrementally from the running
//!   per-signal length sums ([`BatchScratch::len_sum`]) — `O(level pins)`
//!   instead of `O(gates × fanin × windows)`;
//! * launch fusion groups: maximal runs of consecutive levels whose
//!   combined thread count does not exceed
//!   [`SimConfig::fuse_threshold`](crate::SimConfig::fuse_threshold),
//!   executed as one phased launch (count/store phases per level behind
//!   the device's internal phase hand-off) — one launch overhead instead
//!   of two per level;
//! * a persistent scratch arena ([`BatchScratch`]) replacing all per-level
//!   allocations: atomic pointer/length tables, plus count-output and
//!   prefix-sum-base columns in which every level of a fused group owns a
//!   **disjoint contiguous slab range** ([`LevelDesc::col_off`]) — the
//!   group's base assignment becomes one carry-chained segmented
//!   prefix-sum over that slab, and the overlapped publish path (len-sum
//!   accounting + SAIF dump enqueueing of level `L`) reads `L`'s range
//!   while level `L + 1`'s count pass writes its own.

use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use gatspi_graph::CircuitGraph;

/// One level's slice of the flattened schedule tables.
#[derive(Debug, Clone)]
pub(crate) struct LevelDesc {
    /// Range of gate slots (indices into `gates` / `out_sigs`).
    pub gate_lo: u32,
    /// One past the last gate slot.
    pub gate_hi: u32,
    /// Logical threads: gates in level × windows.
    pub threads: usize,
    /// Offset of this level's count/base entries in the scratch column.
    /// Levels of a fused group occupy disjoint consecutive ranges of one
    /// contiguous slab (`col_off..col_off + threads`), so the group's
    /// segmented prefix-sum scans one arena run and a level's publish can
    /// proceed while later levels of the same group fill their own ranges.
    /// Classic single-level groups start at 0.
    pub col_off: u32,
}

/// A maximal run of consecutive levels dispatched by one launch decision.
#[derive(Debug, Clone)]
pub(crate) struct LaunchGroup {
    /// Level indices covered.
    pub levels: Range<usize>,
    /// Combined logical threads across the covered levels.
    pub threads: usize,
    /// `true` ⇒ one phased launch (count + store phases per level);
    /// `false` ⇒ the classic two launches for a single wide level.
    pub fused: bool,
    /// Range into [`LevelSchedule::phase_threads`] for the phased launch.
    pub phases: Range<usize>,
}

/// Flattened, immutable launch schedule for one window batch.
#[derive(Debug)]
pub(crate) struct LevelSchedule {
    /// Windows simulated concurrently in this batch.
    pub nw: usize,
    levels: Vec<LevelDesc>,
    groups: Vec<LaunchGroup>,
    /// Gate id per gate slot, (level, gate id) order.
    gates: Vec<u32>,
    /// Output signal per gate slot.
    out_sigs: Vec<u32>,
    /// CSR: pins of gate slot `s` live at `pin_sigs[pin_base[s]..pin_base[s + 1]]`.
    pin_base: Vec<u32>,
    /// Input signal per (gate slot, pin).
    pin_sigs: Vec<u32>,
    /// Flat per-phase thread counts; a fused group's phased launch uses
    /// `phase_threads[group.phases]` (two phases per level: count, store).
    phase_threads: Vec<usize>,
    /// Widest single level's thread count.
    max_level_threads: usize,
    /// Largest fused group's gate-slot count × windows (sizes the publish
    /// backlog a fused launch can produce before the ring drains).
    max_fused_msgs: usize,
    /// Entries the scratch count/base column must hold: the widest single
    /// level or the largest fused group's whole slab, whichever is bigger.
    col_entries: usize,
}

impl LevelSchedule {
    /// Builds the schedule for `nw` concurrent windows with the given
    /// fusion threshold (`0` disables fusion).
    pub fn build(graph: &CircuitGraph, nw: usize, fuse_threshold: usize) -> Self {
        let n_levels = graph.n_levels();
        let level_offsets = graph.level_offsets();
        let gates = graph.level_gates_flat().to_vec();
        let fanin_offsets = graph.fanin_offsets();
        let fanin_signals = graph.fanin_signals_flat();
        let gate_outputs = graph.gate_outputs_flat();

        let mut out_sigs = Vec::with_capacity(gates.len());
        let mut pin_base = Vec::with_capacity(gates.len() + 1);
        let mut pin_sigs = Vec::new();
        pin_base.push(0u32);
        for &g in &gates {
            let g = g as usize;
            out_sigs.push(gate_outputs[g]);
            let a = fanin_offsets[g] as usize;
            let b = fanin_offsets[g + 1] as usize;
            pin_sigs.extend_from_slice(&fanin_signals[a..b]);
            pin_base.push(pin_sigs.len() as u32);
        }

        let mut levels: Vec<LevelDesc> = (0..n_levels)
            .map(|l| {
                let lo = level_offsets[l];
                let hi = level_offsets[l + 1];
                LevelDesc {
                    gate_lo: lo,
                    gate_hi: hi,
                    threads: (hi - lo) as usize * nw,
                    col_off: 0,
                }
            })
            .collect();

        // Greedy fusion: extend a run while the combined thread count stays
        // under the threshold. A single level at or above the threshold
        // keeps the classic two-launch schedule (wide levels amortise their
        // launch overhead; fusing them would only serialize the host
        // prefix-sum behind a worker barrier).
        let mut groups = Vec::new();
        let mut phase_threads = Vec::new();
        let mut start = 0usize;
        while start < n_levels {
            let first = levels[start].threads;
            if fuse_threshold == 0 || first >= fuse_threshold {
                groups.push(LaunchGroup {
                    levels: start..start + 1,
                    threads: first,
                    fused: false,
                    phases: 0..0,
                });
                start += 1;
                continue;
            }
            let mut end = start + 1;
            let mut cum = first;
            while end < n_levels
                && levels[end].threads < fuse_threshold
                && cum + levels[end].threads <= fuse_threshold
            {
                cum += levels[end].threads;
                end += 1;
            }
            let phase_lo = phase_threads.len();
            let mut slab_off = 0u32;
            for ld in &mut levels[start..end] {
                // Consecutive levels of the group stack into one
                // contiguous slab of the scratch column.
                ld.col_off = slab_off;
                slab_off += ld.threads as u32;
                phase_threads.push(ld.threads); // count pass
                phase_threads.push(ld.threads); // store pass
            }
            groups.push(LaunchGroup {
                levels: start..end,
                threads: cum,
                fused: true,
                phases: phase_lo..phase_threads.len(),
            });
            start = end;
        }

        let max_level_threads = graph.max_level_width() * nw;
        let max_fused_msgs = groups
            .iter()
            .filter(|g| g.fused)
            .map(|g| g.threads)
            .max()
            .unwrap_or(0);

        LevelSchedule {
            nw,
            levels,
            groups,
            gates,
            out_sigs,
            pin_base,
            pin_sigs,
            phase_threads,
            max_level_threads,
            max_fused_msgs,
            col_entries: max_level_threads.max(max_fused_msgs),
        }
    }

    /// The launch groups in dependency order.
    pub fn groups(&self) -> &[LaunchGroup] {
        &self.groups
    }

    /// Number of levels (one publish ticket each, at most).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level descriptor.
    pub fn level(&self, l: usize) -> &LevelDesc {
        &self.levels[l]
    }

    /// Per-phase thread counts of a fused group.
    pub fn phases(&self, group: &LaunchGroup) -> &[usize] {
        &self.phase_threads[group.phases.clone()]
    }

    /// Gate id of a gate slot.
    #[inline]
    pub fn gate(&self, slot: usize) -> usize {
        self.gates[slot] as usize
    }

    /// Output signal of a gate slot.
    #[inline]
    pub fn out_sig(&self, slot: usize) -> usize {
        self.out_sigs[slot] as usize
    }

    /// Input signals of a gate slot, pin order.
    #[inline]
    pub fn pins_of(&self, slot: usize) -> &[u32] {
        &self.pin_sigs[self.pin_base[slot] as usize..self.pin_base[slot + 1] as usize]
    }

    /// All input signals a level touches (for the incremental working-set
    /// sum).
    pub fn level_pins(&self, l: usize) -> &[u32] {
        let ld = &self.levels[l];
        let a = self.pin_base[ld.gate_lo as usize] as usize;
        let b = self.pin_base[ld.gate_hi as usize] as usize;
        &self.pin_sigs[a..b]
    }

    /// Input working set of level `l` in words, from the running per-signal
    /// length sums (valid only behind a publish fence: the sums for a
    /// signal settle when its level's publish ticket completes).
    pub fn level_ws(&self, len_sum: &[AtomicU64], l: usize) -> u64 {
        self.level_pins(l)
            .iter()
            .map(|&s| len_sum[s as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Allocates the batch scratch arena sized for this schedule.
    pub fn new_scratch(&self, n_signals: usize) -> BatchScratch {
        BatchScratch::new(n_signals, self.nw, self.col_entries)
    }

    /// Entries the scratch count/base column must hold for this schedule:
    /// the widest single level's threads or the largest fused group's
    /// contiguous slab, whichever is bigger.
    pub fn col_entries(&self) -> usize {
        self.col_entries
    }

    /// Messages the dump ring must hold so no level's publication ever
    /// blocks on the SAIF scan: the widest single level (the publish worker
    /// enqueues a whole level at a time) or the largest fused group
    /// (published while the launch is still running), whichever is larger.
    pub fn dump_backlog(&self) -> usize {
        self.max_level_threads.max(self.max_fused_msgs)
    }
}

/// Per-batch scratch arena: every buffer the per-level hot loop touches,
/// allocated once. Pointer/length tables are atomics because the *store
/// pass itself* publishes them (each store thread writes its output's
/// pointer and length — the pipelined executor's folded publication);
/// `outs`/`bases` form one column in which every level of a fused group
/// owns a disjoint contiguous slab range ([`LevelDesc::col_off`]), so the
/// overlapped host publish of level `L` reads its own range while level
/// `L + 1`'s launches fill theirs — no column double-buffering and no
/// parity fences (the group-boundary epoch fence in `session.rs` orders
/// reuse across groups).
#[derive(Debug)]
pub(crate) struct BatchScratch {
    /// `ptrs[w * n_signals + s]`: word offset of signal `s`'s waveform in
    /// window `w`, `u32::MAX` if absent.
    pub ptrs: Vec<AtomicU32>,
    /// Stored length in words of the same waveform.
    pub lens: Vec<AtomicU32>,
    /// Running per-signal stored words across all windows of this batch
    /// (the incremental working-set sums). Atomic because publish workers
    /// for disjoint gate ranges accumulate concurrently.
    pub len_sum: Vec<AtomicU64>,
    /// Count-pass packed outputs (one column of `stride` entries).
    outs: Vec<AtomicU64>,
    /// Prefix-summed arena bases (one column of `stride` entries).
    bases: Vec<AtomicU32>,
    /// Entries in the `outs`/`bases` column (≥ the widest level's threads
    /// and ≥ the largest fused group's slab).
    stride: usize,
    /// Consecutive acquisitions this arena served while grossly oversized
    /// for the requested batch (the pool's shrink heuristic; see
    /// `Session::acquire_scratch`).
    pub oversize_uses: u32,
}

impl BatchScratch {
    fn new(n_signals: usize, nw: usize, col_entries: usize) -> Self {
        let mut ptrs = Vec::with_capacity(nw * n_signals);
        ptrs.resize_with(nw * n_signals, || AtomicU32::new(u32::MAX));
        let mut lens = Vec::with_capacity(nw * n_signals);
        lens.resize_with(nw * n_signals, || AtomicU32::new(0));
        let mut len_sum = Vec::with_capacity(n_signals);
        len_sum.resize_with(n_signals, || AtomicU64::new(0));
        let mut outs = Vec::with_capacity(col_entries);
        outs.resize_with(col_entries, || AtomicU64::new(0));
        let mut bases = Vec::with_capacity(col_entries);
        bases.resize_with(col_entries, || AtomicU32::new(0));
        BatchScratch {
            ptrs,
            lens,
            len_sum,
            outs,
            bases,
            stride: col_entries,
            oversize_uses: 0,
        }
    }

    /// The count-output column; a level's entries live at
    /// `[col_off..col_off + threads]`.
    #[inline]
    pub fn outs(&self) -> &[AtomicU64] {
        &self.outs
    }

    /// The prefix-sum base column; same layout as [`BatchScratch::outs`].
    #[inline]
    pub fn bases(&self) -> &[AtomicU32] {
        &self.bases
    }

    /// Entries in the `outs`/`bases` column.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Pointer-table capacity in `(window, signal)` slots.
    pub fn ptr_capacity(&self) -> usize {
        self.ptrs.len()
    }

    /// Snapshot of the first `n` pointer-table entries (for waveform
    /// extraction; `n = nw × n_signals` of the batch that used this
    /// scratch, which may be smaller than the arena when it is reused
    /// from the session pool).
    pub fn ptrs_snapshot(&self, n: usize) -> Vec<u32> {
        self.ptrs[..n]
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot of the first `n` length-table entries (word counts per
    /// (window, signal) waveform — what the host-spill sink reads back).
    pub fn lens_snapshot(&self, n: usize) -> Vec<u32> {
        self.lens[..n]
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }

    /// Whether this arena is large enough for a batch needing `ptrs`
    /// pointer-table entries and `threads` per-level scratch entries.
    pub fn fits(&self, ptrs: usize, threads: usize) -> bool {
        self.ptrs.len() >= ptrs && self.stride >= threads
    }

    /// Re-initializes the first `ptrs` pointer/length entries and the
    /// per-signal length sums for a new batch (`outs`/`bases` need no
    /// reset: every level writes its entries in the count pass before
    /// anything reads them).
    pub fn reset(&self, ptrs: usize) {
        for p in &self.ptrs[..ptrs] {
            p.store(u32::MAX, Ordering::Relaxed);
        }
        for l in &self.lens[..ptrs] {
            l.store(0, Ordering::Relaxed);
        }
        for s in &self.len_sum {
            s.store(0, Ordering::Relaxed);
        }
    }
}

/// Host-side mutable state threaded through the per-level loop: the arena
/// bump pointer. (The per-signal length sums live in
/// [`BatchScratch::len_sum`] so the overlapped publish workers can
/// accumulate them off the critical path; a fused group's bump carry lives
/// in the group's segmented-prefix-sum assigner while its launch runs.)
#[derive(Debug, Default)]
pub(crate) struct HostState {
    /// Next free arena word (kept even-aligned for output waveforms).
    pub bump: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use std::sync::Arc;

    fn chain_graph(n: usize) -> Arc<CircuitGraph> {
        let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
        let mut prev = b.add_input("a").unwrap();
        for i in 0..n {
            let net = b.add_net(&format!("n{i}")).unwrap();
            b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
            prev = net;
        }
        b.mark_output(prev);
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    #[test]
    fn tables_mirror_graph() {
        let g = chain_graph(5);
        let s = LevelSchedule::build(&g, 3, 0);
        assert_eq!(s.levels.len(), 5);
        for l in 0..5 {
            let ld = s.level(l);
            assert_eq!(ld.threads, 3);
            let slot = ld.gate_lo as usize;
            let gate = s.gate(slot);
            assert_eq!(g.gate_level(gate), l as u32);
            assert_eq!(s.out_sig(slot), g.gate_output(gate).index());
            assert_eq!(s.pins_of(slot), g.gate_fanin(gate));
            assert_eq!(s.level_pins(l), g.gate_fanin(gate));
        }
    }

    #[test]
    fn threshold_zero_disables_fusion() {
        let g = chain_graph(4);
        let s = LevelSchedule::build(&g, 8, 0);
        assert_eq!(s.groups().len(), 4);
        assert!(s.groups().iter().all(|gr| !gr.fused));
    }

    #[test]
    fn small_levels_fuse_up_to_threshold() {
        let g = chain_graph(10);
        // 1 gate × 4 windows = 4 threads per level; threshold 12 → groups
        // of 3 levels.
        let s = LevelSchedule::build(&g, 4, 12);
        let sizes: Vec<usize> = s.groups().iter().map(|gr| gr.levels.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        for gr in s.groups() {
            assert!(gr.fused);
            assert_eq!(s.phases(gr).len(), 2 * gr.levels.len());
            assert!(gr.threads <= 12);
        }
    }

    #[test]
    fn fused_group_levels_get_disjoint_contiguous_slabs() {
        let g = chain_graph(10);
        let s = LevelSchedule::build(&g, 4, 12);
        for gr in s.groups() {
            // Within a group the levels stack contiguously from 0; the
            // whole slab fits the scratch column.
            let mut expect = 0u32;
            for l in gr.levels.clone() {
                let ld = s.level(l);
                assert_eq!(ld.col_off, expect, "level {l} slab offset");
                expect += ld.threads as u32;
            }
            assert_eq!(expect as usize, gr.threads);
            assert!(gr.threads <= s.col_entries());
        }
        // Classic (unfused) levels all start at column 0.
        let s = LevelSchedule::build(&g, 4, 0);
        assert!((0..s.n_levels()).all(|l| s.level(l).col_off == 0));
    }

    #[test]
    fn wide_level_stays_classic() {
        let g = chain_graph(3);
        // 1 gate × 32 windows = 32 threads ≥ threshold 32 → classic.
        let s = LevelSchedule::build(&g, 32, 32);
        assert!(s.groups().iter().all(|gr| !gr.fused));
        // Raising the threshold fuses everything into one group.
        let s = LevelSchedule::build(&g, 32, 128);
        assert_eq!(s.groups().len(), 1);
        assert!(s.groups()[0].fused);
        assert_eq!(s.groups()[0].threads, 96);
    }

    #[test]
    fn scratch_sized_for_widest_level_or_largest_slab() {
        let g = chain_graph(2);
        let s = LevelSchedule::build(&g, 6, 0);
        let scratch = s.new_scratch(g.n_signals());
        assert_eq!(scratch.stride(), 6);
        assert_eq!(scratch.outs().len(), 6);
        assert_eq!(scratch.bases().len(), 6);
        assert_eq!(scratch.ptr_capacity(), 6 * g.n_signals());
        assert_eq!(scratch.len_sum.len(), g.n_signals());
        assert!(scratch
            .ptrs
            .iter()
            .all(|p| p.load(Ordering::Relaxed) == u32::MAX));
        // A fused schedule sizes the column for the largest group slab,
        // which exceeds any single level.
        let fused = LevelSchedule::build(&g, 6, 100);
        assert_eq!(fused.col_entries(), 12, "2 levels × 6 threads slab");
        assert_eq!(fused.new_scratch(g.n_signals()).stride(), 12);
    }

    #[test]
    fn reset_clears_len_sums() {
        let g = chain_graph(2);
        let s = LevelSchedule::build(&g, 2, 0);
        let scratch = s.new_scratch(g.n_signals());
        scratch.len_sum[0].store(99, Ordering::Relaxed);
        scratch.ptrs[0].store(5, Ordering::Relaxed);
        scratch.reset(scratch.ptr_capacity());
        assert_eq!(scratch.len_sum[0].load(Ordering::Relaxed), 0);
        assert_eq!(scratch.ptrs[0].load(Ordering::Relaxed), u32::MAX);
    }

    #[test]
    fn packed_codec_round_trips() {
        use crate::kernel::KernelOutput;
        for (toggles, max_extent, initial_one) in [(0u32, 0u32, false), (3, 5, true), (7, 7, false)]
        {
            let out = KernelOutput {
                toggles,
                max_extent,
                initial_one,
            };
            let packed = out.pack();
            assert_eq!(KernelOutput::unpack(packed), out);
            let words = out.words() as usize;
            assert_eq!(KernelOutput::unpack_words_even(packed), words + (words & 1));
        }
    }

    #[test]
    fn incremental_ws_matches_direct_sum() {
        let g = chain_graph(3);
        let s = LevelSchedule::build(&g, 2, 0);
        let scratch = s.new_scratch(g.n_signals());
        // Signal 0 (the PI) has 5 words in each of 2 windows.
        scratch.len_sum[0].store(10, Ordering::Relaxed);
        assert_eq!(s.level_ws(&scratch.len_sum, 0), 10);
        assert_eq!(
            s.level_ws(&scratch.len_sum, 1),
            0,
            "level 1 input not stored yet"
        );
        scratch.len_sum[g.gate_output(0).index()].store(6, Ordering::Relaxed);
        assert_eq!(s.level_ws(&scratch.len_sum, 1), 6);
    }
}
