//! The compiled-session API: prepare once, re-simulate many times.
//!
//! The paper's speedup story rests on doing graph preparation once and then
//! re-simulating many stimuli fast. [`Session`] is that split made
//! explicit: building one from `(CircuitGraph, SimConfig)` owns the
//! simulated device and a keyed cache of [`LevelSchedule`] plans (one per
//! window count and fuse threshold), plus a pool of [`BatchScratch`]
//! arenas, so repeated runs — more segments of one stimulus, or entirely
//! new stimuli — skip every piece of preparation that does not depend on
//! the stimulus itself. Execution is driven by [`RunOptions`] and can
//! stream every finished waveform through an output sink
//! ([`Session::run_streaming`]), including the built-in host spill that
//! keeps [`SimResult::waveform`] working across memory segments.

use crate::sync::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use gatspi_gpu::{AppPhaseProfile, Device, DeviceMemory, KernelProfile, LaunchConfig, MultiGpu};
use gatspi_graph::CircuitGraph;
use gatspi_sdf::NO_ARC;
use gatspi_wave::saif::{SaifDocument, SaifRecord};
use gatspi_wave::{SimTime, Waveform, EOW, INIT_ONE_MARKER};

use crate::kernel::{simulate_gate, GateKernelInput, KernelMode, KernelOutput, MAX_KERNEL_PINS};
use crate::result::ExtractionState;
use crate::ring::{backoff, DumpMsg, DumpRing};
use crate::schedule::{BatchScratch, ConeInfo, HostState, LevelSchedule};
use crate::sink::{SaifSink, SpillSink, VcdSink, WaveformSink, WindowInfo};
use crate::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::{CoreError, Result, SimConfig, SimResult, Speculation};

/// Levels with at least this many threads prefix-sum their count-pass
/// outputs across host workers; smaller levels scan serially. The serial
/// scan is one load+add per thread (~1 ns), so forking only pays once the
/// scan itself reaches milliseconds — set high enough that the two
/// fork/join rounds (tens of µs each) are noise against the scan saved.
const PARALLEL_PREFIX_MIN: usize = 1 << 21;

/// Upper bound on prefix-sum workers (bounds the stack-resident partial-sum
/// arrays so the hot path stays allocation-free).
const MAX_PREFIX_WORKERS: usize = 64;

/// Scratch arenas kept in the session pool (one per concurrently executing
/// device is plenty; anything beyond bounds idle memory).
const SCRATCH_POOL_CAP: usize = 8;

/// An arena at least this many times larger than the batch needs it (in
/// both the pointer-table and per-level dimensions) counts as grossly
/// oversized for the pool's shrink heuristic.
const SCRATCH_OVERSIZE_FACTOR: usize = 4;

/// Consecutive grossly-oversized servings after which the pool drops the
/// arena and allocates one sized for the batch at hand, so one worst-case
/// arena cannot serve tiny batches indefinitely.
const SCRATCH_SHRINK_AFTER: u32 = 4;

/// Levels narrower than this many (gate, window) threads publish *inline*
/// on the issuing thread instead of through the pipeline worker: handing a
/// handful of messages to another thread costs more in wake-up latency
/// than the publish itself (the same reasoning as the device's inline
/// launches). Inline publication is safe alongside an outstanding ticket —
/// the dump ring is multi-producer and the length sums are atomic — except
/// for the scratch-column parity guard handled at the issue site.
const INLINE_PUBLISH_MAX: usize = 256;

/// Levels with at least this many (gate, window) threads publish (len-sum
/// accounting + dump enqueue) across multiple host workers partitioned by
/// gate range; narrower levels publish on the single pipeline worker.
const PARALLEL_PUBLISH_MIN: usize = 1 << 15;

/// Upper bound on publish fan-out workers.
const MAX_PUBLISH_WORKERS: usize = 32;

/// Dump messages a publish worker accumulates before reserving ring space
/// for the whole chunk at once (one reservation per chunk, not per
/// message). Stack-resident, so publication stays allocation-free.
const PUBLISH_CHUNK: usize = 128;

/// Minimum speculative-thread sample before [`Speculation::Auto`] may
/// disable speculation — a handful of early overflows on a small level
/// must not condemn the whole session to two-pass execution.
const SPEC_AUTO_MIN_SAMPLE: u64 = 1024;

/// [`Speculation::Auto`] disables speculation once
/// `overflows × SPEC_AUTO_RATE_DIV > threads` — i.e. an observed overflow
/// rate above 5%. Past that, the mispredicted budgets (wasted arena words
/// plus repair launches) outweigh the retired count passes.
const SPEC_AUTO_RATE_DIV: u64 = 20;

/// Execution options for one run of a compiled [`Session`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Spill every segment's finished waveforms to host memory before the
    /// device arena is recycled. [`SimResult::waveform`] is then served
    /// from the durable host copy: it works for segmented runs (the
    /// classic API refused with [`CoreError::Segmented`]) and stays valid
    /// after later runs recycle the session's device arena — unlike the
    /// default device-backed extraction. Costs one D2H readback of the
    /// stored gate-output waveforms per segment, reported as
    /// `AppPhaseProfile::{readback_seconds, d2h_bytes}` (primary-input
    /// windows are fed from the host-resident stimulus, not read back).
    pub spill_waveforms: bool,
    /// Cap on windows simulated per memory segment. `None` (default) fits
    /// as many as device memory allows; setting it forces deterministic
    /// segmentation — useful for bounding per-segment arena footprint and
    /// for exercising segmented execution in tests.
    pub segment_windows: Option<usize>,
    /// Launch-fusion threshold override for this run (`None` uses
    /// [`SimConfig::fuse_threshold`]). Part of the plan-cache key, so runs
    /// with different thresholds coexist without evicting each other.
    pub fuse_threshold: Option<usize>,
}

impl RunOptions {
    /// Enables host waveform spill (builder style).
    pub fn with_waveform_spill(mut self) -> Self {
        self.spill_waveforms = true;
        self
    }

    /// Caps windows per memory segment (builder style).
    pub fn with_segment_windows(mut self, nw: usize) -> Self {
        self.segment_windows = Some(nw.max(1));
        self
    }

    /// Overrides the launch-fusion threshold for this run (builder style).
    pub fn with_fuse_threshold(mut self, threshold: usize) -> Self {
        self.fuse_threshold = Some(threshold);
        self
    }
}

/// Plan-cache counters of a [`Session`] (see
/// [`Session::plan_cache_stats`]). A hit means a batch reused a previously
/// built `LevelSchedule` instead of re-walking the graph; cone counters
/// track the incremental-run sub-schedule store the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Batches that reused a cached plan.
    pub hits: u64,
    /// Plans built because no cached one matched (also the build count).
    pub misses: u64,
    /// Plans currently cached (full plans plus cone sub-plans).
    pub cached: usize,
    /// Plans evicted by the LRU bound
    /// ([`SimConfig::plan_cache_cap`](crate::SimConfig::plan_cache_cap)).
    pub evictions: u64,
    /// Incremental batches that reused a cached cone sub-schedule
    /// ([`Session::run_incremental`]).
    pub cone_hits: u64,
    /// Cone sub-schedules built because no cached one matched.
    pub cone_misses: u64,
}

/// A cached incremental-run plan: the cone sub-schedule for one
/// `(window count, fuse threshold, changed set)` key, plus the cone it was
/// restricted to (`changed` verifies the signature against hash collisions).
#[derive(Debug)]
struct ConePlan {
    schedule: Arc<LevelSchedule>,
    cone: Arc<ConeInfo>,
    changed: Vec<bool>,
}

/// LRU-bounded plan cache (guarded by the session's mutex): every entry
/// carries the tick of its last use; inserts beyond
/// [`SimConfig::plan_cache_cap`](crate::SimConfig::plan_cache_cap) evict
/// the stalest entry. Full plans and cone sub-plans live in separate maps
/// (their keys differ) but share the recency clock and the cap, applied
/// per map.
#[derive(Debug, Default)]
struct PlanCache {
    /// `(nw, fuse_threshold)` → (plan, last-used tick).
    map: HashMap<(usize, usize), (Arc<LevelSchedule>, u64)>,
    /// `(nw, fuse_threshold, cone signature)` → (cone plan, last-used
    /// tick). The signature is an order-independent hash of the changed
    /// gate set; `ConePlan::changed` is compared on every hit, so a
    /// colliding set rebuilds instead of silently reusing the wrong plan.
    cones: HashMap<(usize, usize, u64), (Arc<ConePlan>, u64)>,
    /// Monotonic access counter stamping recency.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    cone_hits: u64,
    cone_misses: u64,
}

/// Order-independent signature of a changed-gate set: FNV-1a over the set
/// ids in ascending order (the flag vector is scanned in index order, so
/// equal sets hash equally regardless of how the caller listed them).
fn cone_signature(changed: &[bool]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (g, &c) in changed.iter().enumerate() {
        if c {
            h ^= g as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A compiled simulation session (Fig. 5 made resident): the levelized
/// graph, the simulated device, the plan cache and the scratch pool, ready
/// to execute any number of stimuli.
///
/// Construction does the stimulus-independent preparation (device
/// allocation, collapsed average-delay tables); the first run of each
/// window count builds and caches its `LevelSchedule`; every later run —
/// another segment, another stimulus batch, another device shard — reuses
/// it.
///
/// # Fault tolerance
///
/// A session is **never poisoned by a failed run**. Every segment executes
/// under a panic guard at the segment boundary: a device fault, a dead
/// sink, or a stray worker panic surfaces as a structured
/// [`CoreError`](crate::CoreError) (`DeviceFault` / `SinkClosed`) from the
/// `run*` call, and the scratch pool, plan cache and dump machinery remain
/// reusable — the next run on the same session reproduces a fresh
/// session's output bit for bit. Transient device faults are retried per
/// segment under [`SimConfig::with_retry_policy`] (see
/// [`RetryPolicy`](crate::RetryPolicy)) *before* any sink delivery, so
/// streamed and post-hoc outputs stay identical to a fault-free run;
/// multi-GPU runs additionally fail a permanently dead device's shards
/// over to the surviving devices (see [`Session::run_multi_gpu`]).
/// Recovery activity is reported in `SimResult::app_profile`
/// (`faults_injected`, `segment_retries`, `failovers`, `backoff_seconds`,
/// `oom_retries`).
///
/// # Example
///
/// ```
/// use gatspi_core::{Session, SimConfig};
/// use gatspi_graph::{CircuitGraph, GraphOptions};
/// use gatspi_netlist::{CellLibrary, NetlistBuilder};
/// use gatspi_wave::Waveform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("demo", CellLibrary::industry_mini());
/// let a = b.add_input("a")?;
/// let c = b.add_input("b")?;
/// let y = b.add_output("y")?;
/// b.add_gate("u", "NAND2", &[a, c], y)?;
/// let graph = CircuitGraph::build(&b.finish()?, None, &GraphOptions::default())?;
///
/// let session = Session::new(graph.into(), SimConfig::default());
/// let stimuli = vec![
///     Waveform::from_toggles(false, &[105, 205]),
///     Waveform::constant(true),
/// ];
/// // Re-simulate twice: the second run reuses the cached plan.
/// let first = session.run(&stimuli, 300)?;
/// let again = session.run(&stimuli, 300)?;
/// assert!(first.saif.diff(&again.saif).is_empty());
/// assert!(session.plan_cache_stats().hits >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    graph: Arc<CircuitGraph>,
    config: SimConfig,
    device: Arc<Device>,
    /// Collapsed (rise, fall) delay per pin slot — the Table 7 "partial
    /// SDF" 2-element arrays, precomputed once.
    avg_delays: Vec<(i32, i32)>,
    /// `pi_of[s]`: stimulus index of signal `s` when it is a primary
    /// input, else `u32::MAX` (used by the sink drain to feed PI windows
    /// from the host-resident stimulus instead of reading them back).
    pi_of: Vec<u32>,
    /// Keyed plan cache: `(nw, fuse_threshold)` → schedule, LRU-bounded by
    /// [`SimConfig::plan_cache_cap`]. Plans are device-independent, so
    /// multi-GPU shards and the CPU backend share them too.
    plans: Mutex<PlanCache>,
    /// Recycled batch scratch arenas (pointer/length tables and per-level
    /// count/base tables), so repeated segments and repeated runs stay off
    /// the allocator.
    scratch_pool: Mutex<Vec<BatchScratch>>,
    /// `(total windows, fuse_threshold)` → segment size that last worked,
    /// so repeat runs on a memory-constrained session start there instead
    /// of re-probing the OOM halving sequence (a starting point only: a
    /// denser stimulus still halves further, a sparser one merely
    /// over-segments, both correct).
    segment_hints: Mutex<HashMap<(usize, usize), usize>>,
    /// Speculative store threads observed across every batch of this
    /// session (the [`Speculation::Auto`] monitor's sample).
    spec_threads: AtomicU64,
    /// How many of those threads overflowed their reservation.
    spec_overflows: AtomicU64,
    /// Latched once [`Speculation::Auto`] trips its overflow-rate
    /// threshold; every later batch runs the two-pass schedule.
    spec_disabled: AtomicBool,
    /// Test/bench hook ([`Session::seed_extent_history`]): when nonzero,
    /// every plan fetch re-seeds the plan's extent predictor with this
    /// many words per gate.
    spec_seed: AtomicU32,
}

/// The stimulus one window batch uploads before launching.
///
/// A full run uploads every primary input's restructured windows; an
/// incremental run uploads only the cone's *boundary* — primary-input
/// boundary signals from freshly restructured stimulus windows, gate-driven
/// boundary signals verbatim from the previous run's host spill (their
/// stored device words, so in-cone consumers read bit-identical inputs).
pub(crate) enum BatchStimulus<'a> {
    /// `win_stims[w][k]` is primary input `k`'s waveform in window `w`.
    Full(&'a [Vec<Waveform>]),
    /// Cone-boundary stimulus for an incremental batch.
    Boundary {
        /// The previous run's sealed spill (window table must cover this
        /// batch's windows at `window_base`).
        spill: &'a SpillSink,
        /// Boundary signals, ascending (from [`ConeInfo::boundary`]).
        boundary: &'a [u32],
        /// Restructured waveforms of the boundary's primary-input subset,
        /// per window, in boundary order: `pi_stims[w][j]` is the j-th
        /// boundary PI's waveform in window `w`.
        pi_stims: &'a [Vec<Waveform>],
        /// Absolute index of this batch's first window in the spill tables.
        window_base: usize,
    },
}

/// Accumulated outcome of simulating one batch of windows on one device.
pub(crate) struct WindowBatch {
    pub windows: Vec<(SimTime, SimTime)>,
    pub ptrs: Vec<u32>,
    pub lens: Vec<u32>,
    pub tc: Vec<u64>,
    pub t0: Vec<i64>,
    pub t1: Vec<i64>,
    pub kernel_profile: KernelProfile,
    pub launches: u64,
    pub fused_launches: u64,
    pub dump_wait_seconds: f64,
    pub dump_stall_seconds: f64,
    /// Store threads executed speculatively (0 when speculation was off).
    pub spec_threads: u64,
    /// Speculative threads whose reservation overflowed and were re-run by
    /// a repair pass.
    pub spec_overflows: u64,
    /// Arena words reserved by speculative budgets beyond what the stored
    /// waveforms needed (hit slack plus abandoned overflow reservations).
    pub spec_waste_words: u64,
}

impl Session {
    /// Compiles a session for `graph`, allocating the configured device.
    pub fn new(graph: Arc<CircuitGraph>, config: SimConfig) -> Self {
        let device = Arc::new(Device::new(config.device.clone(), config.memory_words));
        Self::with_device(graph, config, device)
    }

    /// Compiles a session sharing an existing device (CPU-backend runs and
    /// embedding setups use this).
    pub fn with_device(graph: Arc<CircuitGraph>, config: SimConfig, device: Arc<Device>) -> Self {
        let avg_delays = compute_avg_delays(&graph);
        let mut pi_of = vec![u32::MAX; graph.n_signals()];
        for (k, &pi) in graph.primary_inputs().iter().enumerate() {
            pi_of[pi.index()] = k as u32;
        }
        Session {
            graph,
            config,
            device,
            avg_delays,
            pi_of,
            plans: Mutex::new(PlanCache::default()),
            scratch_pool: Mutex::new(Vec::new()),
            segment_hints: Mutex::new(HashMap::new()),
            spec_threads: AtomicU64::new(0),
            spec_overflows: AtomicU64::new(0),
            spec_disabled: AtomicBool::new(false),
            spec_seed: AtomicU32::new(0),
        }
    }

    /// Whether the next batch should run the speculative single-pass
    /// schedule (see [`Speculation`]).
    fn speculation_active(&self) -> bool {
        match self.config.speculation {
            Speculation::Off => false,
            Speculation::On => true,
            // relaxed-ok: advisory latch — a stale read only delays the
            // two-pass fallback by one batch; results are bit-identical
            // either way.
            Speculation::Auto => !self.spec_disabled.load(Ordering::Relaxed),
        }
    }

    /// Feeds one batch's speculation outcome into the session monitor and
    /// applies the [`Speculation::Auto`] fallback once the observed
    /// overflow rate crosses the threshold on a meaningful sample.
    fn note_speculation(&self, threads: u64, overflows: u64) {
        if threads == 0 {
            return;
        }
        // relaxed-ok: commutative monitor counters; nothing is published
        // through them (the latch below is itself advisory).
        let t = self.spec_threads.fetch_add(threads, Ordering::Relaxed) + threads;
        // relaxed-ok: see above.
        let o = self.spec_overflows.fetch_add(overflows, Ordering::Relaxed) + overflows;
        if self.config.speculation == Speculation::Auto
            && t >= SPEC_AUTO_MIN_SAMPLE
            && o.saturating_mul(SPEC_AUTO_RATE_DIV) > t
        {
            // relaxed-ok: advisory latch (see `speculation_active`).
            self.spec_disabled.store(true, Ordering::Relaxed);
        }
    }

    /// Test/bench hook: every plan fetched after this call re-seeds its
    /// per-gate extent history with `words` words per gate (`0` clears the
    /// hook). Deliberately tiny seeds force the overflow-repair path on
    /// every gate; the equivalence suite uses this to prove the repair
    /// pass alone reproduces the two-pass output bit-for-bit.
    #[doc(hidden)]
    pub fn seed_extent_history(&self, words: u32) {
        // relaxed-ok: hook set on the caller's thread before runs; plan
        // fetches read it from the same thread (or behind the plan lock).
        self.spec_seed.store(words, Ordering::Relaxed);
    }

    /// Applies the [`Session::seed_extent_history`] hook to a plan. Runs
    /// on *every* fetch — not just builds — so deliberately tiny test
    /// budgets stay in force across cached-plan reuse and the history the
    /// previous run observed cannot silently widen them.
    fn apply_spec_seed(&self, plan: &LevelSchedule) {
        // relaxed-ok: see `seed_extent_history`.
        let words = self.spec_seed.load(Ordering::Relaxed);
        if words != 0 {
            plan.predictor().fill(words);
        }
    }

    /// The simulation graph.
    pub fn graph(&self) -> &Arc<CircuitGraph> {
        &self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The simulated device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Plan-cache hit/miss/eviction counters (misses equal the number of
    /// `LevelSchedule` builds this session has ever performed).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let cache = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        PlanCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            cached: cache.map.len() + cache.cones.len(),
            evictions: cache.evictions,
            cone_hits: cache.cone_hits,
            cone_misses: cache.cone_misses,
        }
    }

    /// The cached launch plan for `nw` concurrent windows, building it on
    /// first use. Holding the cache lock across the build means concurrent
    /// requests for the same key (multi-GPU shards) block briefly and then
    /// hit, instead of building twice. The cache is LRU-bounded by
    /// [`SimConfig::plan_cache_cap`]: inserting past the cap evicts the
    /// least-recently-used plan (odd tail-segment sizes are rarely reused,
    /// and an unbounded cache would pin every one of them forever).
    pub(crate) fn plan(&self, nw: usize, fuse_threshold: usize) -> Arc<LevelSchedule> {
        let key = (nw, fuse_threshold);
        let mut cache = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((p, stamp)) = cache.map.get_mut(&key) {
            *stamp = tick;
            let p = Arc::clone(p);
            cache.hits += 1;
            self.apply_spec_seed(&p);
            return p;
        }
        cache.misses += 1;
        let p = Arc::new(LevelSchedule::build(&self.graph, nw, fuse_threshold));
        self.apply_spec_seed(&p);
        cache.map.insert(key, (Arc::clone(&p), tick));
        let cap = self.config.plan_cache_cap;
        if cap > 0 && cache.map.len() > cap {
            // The freshly inserted plan carries the newest stamp, so the
            // minimum is always some older entry.
            let lru = cache
                .map
                .iter()
                .min_by_key(|&(_, &(_, stamp))| stamp)
                .map(|(&k, _)| k);
            if let Some(k) = lru {
                cache.map.remove(&k);
                cache.evictions += 1;
            }
        }
        p
    }

    /// The already-extracted cone for `changed`, if any cached cone plan
    /// (at any window count) carries it — a repeat incremental run with
    /// the same resize set skips the graph sweep entirely.
    fn cached_cone(&self, signature: u64, changed: &[bool]) -> Option<Arc<ConeInfo>> {
        let cache = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        cache
            .cones
            .iter()
            .find(|(&(_, _, sig), (p, _))| sig == signature && p.changed == changed)
            .map(|(_, (p, _))| Arc::clone(&p.cone))
    }

    /// The cached cone sub-plan for `(nw, fuse_threshold, changed set)`,
    /// restricting `cone` on first use. Same locking and LRU discipline as
    /// [`Session::plan`]; the caller supplies the (window-independent) cone
    /// so a repeat incremental run with a different segment size reuses it
    /// without re-sweeping the graph.
    fn cone_plan(
        &self,
        nw: usize,
        fuse_threshold: usize,
        signature: u64,
        changed: &[bool],
        cone: &Arc<ConeInfo>,
    ) -> Arc<ConePlan> {
        let key = (nw, fuse_threshold, signature);
        let mut cache = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((p, stamp)) = cache.cones.get_mut(&key) {
            if p.changed == changed {
                *stamp = tick;
                let p = Arc::clone(p);
                cache.cone_hits += 1;
                self.apply_spec_seed(&p.schedule);
                return p;
            }
        }
        cache.cone_misses += 1;
        let schedule = Arc::new(LevelSchedule::restrict(
            &self.graph,
            nw,
            fuse_threshold,
            cone,
        ));
        // Warm the cone's extent history from the full plan cached for the
        // same shape (the history is indexed by gate id, so it transfers
        // verbatim): an incremental run then speculates from the full
        // run's observations instead of first-touch static bounds.
        if let Some((full, _)) = cache.map.get(&(nw, fuse_threshold)) {
            schedule.predictor().seed_from(full.predictor());
        }
        self.apply_spec_seed(&schedule);
        debug_assert_eq!(
            schedule.n_slots(),
            cone.n_gates,
            "cone sub-schedule covers exactly the cone gates"
        );
        let p = Arc::new(ConePlan {
            schedule,
            cone: Arc::clone(cone),
            changed: changed.to_vec(),
        });
        cache.cones.insert(key, (Arc::clone(&p), tick));
        let cap = self.config.plan_cache_cap;
        if cap > 0 && cache.cones.len() > cap {
            let lru = cache
                .cones
                .iter()
                .min_by_key(|&(_, &(_, stamp))| stamp)
                .map(|(&k, _)| k);
            if let Some(k) = lru {
                cache.cones.remove(&k);
                cache.evictions += 1;
            }
        }
        p
    }

    /// Takes a scratch arena from the pool or allocates one. Selection is
    /// best-fit — the *smallest* adequate arena, so a worst-case arena is
    /// not grabbed for every tiny batch — with a shrink heuristic: an arena
    /// that keeps getting picked while grossly oversized (no tighter arena
    /// exists in the pool) is dropped after [`SCRATCH_SHRINK_AFTER`]
    /// consecutive such servings and replaced by a right-sized allocation.
    fn acquire_scratch(&self, plan: &LevelSchedule) -> BatchScratch {
        let n_signals = self.graph.n_signals();
        let need_ptrs = plan.nw * n_signals;
        let need_threads = plan.col_entries();
        let mut pool = self.scratch_pool.lock().unwrap_or_else(|e| e.into_inner());
        let best = pool
            .iter()
            .enumerate()
            .filter(|(_, s)| s.fits(need_ptrs, need_threads))
            .min_by_key(|(_, s)| (s.ptr_capacity(), s.stride()))
            .map(|(i, _)| i);
        if let Some(i) = best {
            let mut scratch = pool.swap_remove(i);
            drop(pool);
            let oversized = scratch.ptr_capacity() >= SCRATCH_OVERSIZE_FACTOR * need_ptrs.max(1)
                && scratch.stride() >= SCRATCH_OVERSIZE_FACTOR * need_threads.max(1);
            if oversized {
                scratch.oversize_uses += 1;
                if scratch.oversize_uses >= SCRATCH_SHRINK_AFTER {
                    // Persistent gross overfit: shrink by reallocating.
                    return plan.new_scratch(n_signals);
                }
            } else {
                scratch.oversize_uses = 0;
            }
            scratch.reset(need_ptrs);
            return scratch;
        }
        drop(pool);
        plan.new_scratch(n_signals)
    }

    /// Returns a scratch arena to the pool.
    fn release_scratch(&self, scratch: BatchScratch) {
        let mut pool = self.scratch_pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    }

    /// The segment size that last worked for this run shape, if any.
    fn segment_hint(&self, total_windows: usize, fuse_threshold: usize) -> Option<usize> {
        let hints = self.segment_hints.lock().unwrap_or_else(|e| e.into_inner());
        hints.get(&(total_windows, fuse_threshold)).copied()
    }

    /// Remembers the segment size a run settled on after OOM halving.
    fn record_segment_hint(&self, total_windows: usize, fuse_threshold: usize, chunk: usize) {
        let mut hints = self.segment_hints.lock().unwrap_or_else(|e| e.into_inner());
        hints.insert((total_windows, fuse_threshold), chunk);
    }

    /// Re-simulates the design with default [`RunOptions`]: `stimuli[k]`
    /// is the waveform of the k-th primary input (graph order) over
    /// `[0, duration)`.
    ///
    /// The stimulus is cut into `cycle_parallelism` windows (aligned to
    /// [`SimConfig::window_align`]) that simulate concurrently; if the
    /// device arena cannot hold all windows at once the run transparently
    /// splits into sequential segments (the paper's "compile the testbench
    /// into shorter segments" fallback).
    ///
    /// # Errors
    ///
    /// * [`CoreError::StimulusMismatch`] if the waveform count is wrong.
    /// * [`CoreError::OutOfMemory`] if even a single window exceeds device
    ///   memory.
    pub fn run(&self, stimuli: &[Waveform], duration: SimTime) -> Result<SimResult> {
        self.run_with(stimuli, duration, &RunOptions::default())
    }

    /// [`Session::run`] with explicit [`RunOptions`].
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_with(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
    ) -> Result<SimResult> {
        self.run_inner(&Arc::clone(&self.device), stimuli, duration, opts, None)
    }

    /// Streaming run: every finished (signal, window) waveform is read back
    /// from the device and handed to `sink` before the arena is recycled,
    /// segment by segment. Combine with
    /// [`RunOptions::spill_waveforms`] to *also* keep the built-in host
    /// copy for [`SimResult::waveform`].
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_streaming(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        sink: &mut dyn WaveformSink,
    ) -> Result<SimResult> {
        self.run_inner(
            &Arc::clone(&self.device),
            stimuli,
            duration,
            opts,
            Some(sink),
        )
    }

    /// Cone-restricted incremental re-simulation: re-runs only the
    /// transitive fan-out of `changed_gates` (gates whose delays were
    /// resized since `prev` — an ECO / optimizer iteration), reusing every
    /// unchanged waveform from `prev`'s host spill instead of recomputing
    /// it. Out-of-cone signals in the returned result are served
    /// *pointer-identically* from `prev`'s spill storage (shared `Arc`
    /// chunks, not copies); boundary signals — out-of-cone signals feeding
    /// cone gates, including primary inputs — are uploaded verbatim from
    /// the spill as stimulus, so in-cone gates read the exact words their
    /// peers read in the full run and the result is bit-identical to a
    /// full re-simulation with the new delays.
    ///
    /// The cone sub-schedule (levels filtered to affected gates, thread
    /// tables compacted, working sets remapped) is cached under the
    /// changed-set signature next to the full plans — a repeat iteration
    /// with the same resize set pays no planning cost
    /// ([`Session::plan_cache_stats`] reports `cone_hits`/`cone_misses`).
    ///
    /// Requirements: `prev` must come from this session's graph with
    /// [`RunOptions::spill_waveforms`] enabled, over the same `duration`,
    /// and `stimuli` must be the same primary-input waveforms that
    /// produced it (an incremental run never re-reads out-of-cone PIs, so
    /// changing them silently would desynchronise the reuse — change
    /// stimulus via a full run). The returned result always carries a
    /// spill, so further incremental runs can chain off it.
    ///
    /// # Errors
    ///
    /// * [`CoreError::BadIncremental`] if `prev` has no spill, covers a
    ///   different signal count or duration, or a changed-gate index is
    ///   out of range.
    /// * Otherwise as [`Session::run`].
    pub fn run_incremental(
        &self,
        prev: &SimResult,
        changed_gates: &[usize],
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
    ) -> Result<SimResult> {
        self.run_incremental_inner(prev, changed_gates, stimuli, duration, opts, None)
    }

    /// [`Session::run_incremental`] with a streaming sink: the recomputed
    /// (in-cone) waveforms are additionally delivered to `sink`, segment
    /// by segment, exactly like [`Session::run_streaming`] — out-of-cone
    /// waveforms are reused, not recomputed, so they do not stream.
    ///
    /// # Errors
    ///
    /// As [`Session::run_incremental`].
    pub fn run_incremental_streaming(
        &self,
        prev: &SimResult,
        changed_gates: &[usize],
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        sink: &mut dyn WaveformSink,
    ) -> Result<SimResult> {
        self.run_incremental_inner(prev, changed_gates, stimuli, duration, opts, Some(sink))
    }

    /// The incremental engine: cone extraction, delta plan resolution,
    /// boundary-stimulus batches, cone-filtered drain into a derived
    /// spill, and the merge of recomputed activity over `prev`'s.
    fn run_incremental_inner(
        &self,
        prev: &SimResult,
        changed_gates: &[usize],
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        mut user_sink: Option<&mut dyn WaveformSink>,
    ) -> Result<SimResult> {
        let t_app = Instant::now();
        let device = Arc::clone(&self.device);
        let n_pis = self.graph.primary_inputs().len();
        if stimuli.len() != n_pis {
            return Err(CoreError::StimulusMismatch {
                expected: n_pis,
                got: stimuli.len(),
            });
        }
        let n_signals = self.graph.n_signals();
        let n_gates = self.graph.n_gates();
        let Some(prev_spill) = prev.spilled.as_ref() else {
            return Err(CoreError::BadIncremental {
                detail: "previous result has no waveform spill \
                         (run it with RunOptions::spill_waveforms)"
                    .into(),
            });
        };
        if prev_spill.n_signals != n_signals {
            return Err(CoreError::BadIncremental {
                detail: format!(
                    "previous result covers {} signals, this graph has {n_signals}",
                    prev_spill.n_signals
                ),
            });
        }
        if prev.duration != duration {
            return Err(CoreError::BadIncremental {
                detail: format!(
                    "previous run simulated {} ticks, this run asks for {duration}",
                    prev.duration
                ),
            });
        }
        let mut changed = vec![false; n_gates];
        for &g in changed_gates {
            if g >= n_gates {
                return Err(CoreError::BadIncremental {
                    detail: format!("changed gate {g} out of range ({n_gates} gates)"),
                });
            }
            changed[g] = true;
        }

        device.memory().reset_counters();
        device.memory().advance_epoch();
        let fuse_threshold = opts.fuse_threshold.unwrap_or(self.config.fuse_threshold);
        let signature = cone_signature(&changed);
        // The cone is window-count independent: reuse it from any cached
        // plan for this changed set, else extract it once per call and
        // share it across every segment's cached sub-plan.
        let cone = self
            .cached_cone(signature, &changed)
            .unwrap_or_else(|| Arc::new(ConeInfo::of(&self.graph, &changed)));

        // The previous run's window partition is the contract the spill
        // pointers are indexed by — reuse it verbatim (same session config
        // would regenerate it anyway).
        let windows = prev_spill.windows.clone();

        // Restructure only the boundary PIs' stimulus (the cone's other
        // boundary signals upload straight from the spill, and out-of-cone
        // PIs are never read).
        let t0 = Instant::now();
        let boundary_pi_stims: Vec<Waveform> = cone
            .boundary
            .iter()
            .filter(|&&s| self.pi_of[s as usize] != u32::MAX)
            .map(|&s| stimuli[self.pi_of[s as usize] as usize].clone())
            .collect();
        let pi_stims = self.restructure(&boundary_pi_stims, &windows, device.workers());
        let restructure_seconds = t0.elapsed().as_secs_f64();

        let mut tc = vec![0u64; n_signals];
        let mut t0_acc = vec![0i64; n_signals];
        let mut t1_acc = vec![0i64; n_signals];
        let mut profile = KernelProfile::empty("resim_cone");
        let mut launches = 0u64;
        let mut fused_launches = 0u64;
        let mut dump_wait = 0.0f64;
        let mut dump_stall = 0.0f64;
        let mut drain_seconds = 0.0f64;
        let mut d2h_batches = 0u64;
        let mut spec_threads = 0u64;
        let mut spec_overflows = 0u64;
        let mut spec_waste = 0u64;
        // The result's spill derives from prev: shared frozen chunks,
        // every pointer carried over; only recomputed cone signals land in
        // the new tail. Always on — it is what makes chained incremental
        // runs (and out-of-cone waveform reads) work.
        let mut spill = SpillSink::derived(prev_spill);
        let mut segments = 0usize;
        let mut i = 0usize;
        let mut chunk = opts
            .segment_windows
            .unwrap_or(windows.len())
            .clamp(1, windows.len().max(1));
        let telemetry = RetryTelemetry::new();
        while i < windows.len() {
            let end = (i + chunk).min(windows.len());
            let plan = self.cone_plan(end - i, fuse_threshold, signature, &changed, &cone);
            let scratch = self.acquire_scratch(&plan.schedule);
            // One attempt = run the batch AND deliver it to the sinks: the
            // drain reads everything back before feeding any sink, so a
            // fault anywhere in the attempt leaves the sinks untouched and
            // the segment re-runs whole — delivery stays exactly-once and
            // bit-identical under retries.
            let mut first_attempt = true;
            let attempt = self.with_retry(0, &telemetry, || {
                if !first_attempt {
                    // A faulted attempt abandoned the batch mid-flight;
                    // scrub its partial writes before re-running.
                    scratch.reset((end - i) * n_signals);
                }
                first_attempt = false;
                let batch = self.run_window_batch(
                    &device,
                    &plan.schedule,
                    &scratch,
                    &windows[i..end],
                    BatchStimulus::Boundary {
                        spill: prev_spill,
                        boundary: &cone.boundary,
                        pi_stims: &pi_stims[i..end],
                        window_base: i,
                    },
                )?;
                let mut sinks: Vec<&mut dyn WaveformSink> = vec![&mut spill];
                if let Some(us) = user_sink.as_mut() {
                    sinks.push(&mut **us);
                }
                let t_drain = Instant::now();
                let drained = self.drain_segment(
                    &device,
                    &batch,
                    segments,
                    i,
                    &[],
                    Some(&cone.sigs),
                    &mut sinks,
                );
                Ok((batch, drained, t_drain.elapsed().as_secs_f64()))
            });
            self.release_scratch(scratch);
            match attempt {
                Ok((batch, drained, drain_s)) => {
                    for s in 0..n_signals {
                        tc[s] += batch.tc[s];
                        t0_acc[s] += batch.t0[s];
                        t1_acc[s] += batch.t1[s];
                    }
                    profile.accumulate(&batch.kernel_profile);
                    launches += batch.launches;
                    fused_launches += batch.fused_launches;
                    dump_wait += batch.dump_wait_seconds;
                    dump_stall += batch.dump_stall_seconds;
                    spec_threads += batch.spec_threads;
                    spec_overflows += batch.spec_overflows;
                    spec_waste += batch.spec_waste_words;
                    d2h_batches += drained;
                    drain_seconds += drain_s;
                    segments += 1;
                    i = end;
                }
                Err(CoreError::OutOfMemory { .. }) if chunk > 1 => {
                    telemetry.oom_retry();
                    chunk = chunk.div_ceil(2);
                }
                Err(e) => return Err(e),
            }
        }
        spill.seal();

        // Merge: recomputed cone signals overwrite prev's activity;
        // everything else — including every primary-input record — carries
        // over untouched (same stimulus, same out-of-cone waveforms).
        let mut saif = prev.saif.clone();
        let mut toggle_counts = prev.toggle_counts.clone();
        for s in 0..n_signals {
            if !cone.sigs[s] {
                continue;
            }
            toggle_counts[s] = tc[s];
            let sid = gatspi_graph::SignalId(s as u32);
            saif.nets.insert(
                self.graph.signal_name(sid).to_string(),
                SaifRecord {
                    t0: t0_acc[s],
                    t1: t1_acc[s],
                    tx: 0,
                    tc: tc[s],
                    ig: 0,
                },
            );
        }

        let spec = device.spec();
        // The graph topology is already resident from the full run — the
        // delta run's H2D is just the boundary stimulus.
        let h2d_bytes = device.memory().h2d_bytes();
        let d2h_bytes = device.memory().d2h_bytes();
        let sync_launch_seconds = launches as f64 * spec.launch_overhead;
        let app_profile = AppPhaseProfile {
            h2d_seconds: h2d_bytes as f64 / spec.pcie_bw,
            readback_seconds: d2h_bytes as f64 / spec.pcie_bw,
            sync_launch_seconds,
            kernel_seconds: (profile.modeled_seconds - sync_launch_seconds).max(0.0),
            restructure_seconds,
            dump_seconds: dump_wait,
            dump_stall_seconds: dump_stall,
            drain_seconds,
            d2h_batches,
            launches,
            fused_launches,
            h2d_bytes,
            d2h_bytes,
            speculative_hit_rate: spec_hit_rate(spec_threads, spec_overflows),
            overflow_repairs: spec_overflows,
            predicted_waste_words: spec_waste,
            faults_injected: telemetry.faults(),
            segment_retries: telemetry.retries(),
            failovers: 0,
            backoff_seconds: telemetry.backoff_seconds(),
            oom_retries: telemetry.oom_retries(),
        };
        Ok(SimResult {
            saif,
            kernel_profile: profile,
            app_profile,
            wall_seconds: t_app.elapsed().as_secs_f64(),
            toggle_counts,
            duration,
            segments: segments.max(1),
            extraction: None,
            spilled: Some(spill),
        })
    }

    /// "OpenMP-equivalent" CPU run (Table 3): the identical algorithm
    /// executed with `threads` host threads and no GPU performance model —
    /// consumers should read measured wall times from the result. Plans
    /// are shared with device runs (schedules are device-independent).
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_cpu(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        threads: usize,
    ) -> Result<SimResult> {
        self.run_cpu_with(stimuli, duration, threads, &RunOptions::default())
    }

    /// [`Session::run_cpu`] with explicit [`RunOptions`] (spill, forced
    /// segmentation and fuse-threshold override work identically to
    /// device runs).
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_cpu_with(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        threads: usize,
        opts: &RunOptions,
    ) -> Result<SimResult> {
        let device = Arc::new(Device::with_workers(
            self.config.device.clone(),
            self.config.memory_words,
            threads,
        ));
        self.run_inner(&device, stimuli, duration, opts, None)
    }

    /// Full application run on an explicit device with default options.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_on_device(
        &self,
        device: Arc<Device>,
        stimuli: &[Waveform],
        duration: SimTime,
    ) -> Result<SimResult> {
        self.run_inner(&device, stimuli, duration, &RunOptions::default(), None)
    }

    /// [`Session::run_on_device`] with explicit [`RunOptions`].
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_on_device_with(
        &self,
        device: Arc<Device>,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
    ) -> Result<SimResult> {
        self.run_inner(&device, stimuli, duration, opts, None)
    }

    /// The engine proper: restructure, segment, execute batches against
    /// cached plans, route outputs through the configured sinks.
    fn run_inner(
        &self,
        device: &Arc<Device>,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        mut user_sink: Option<&mut dyn WaveformSink>,
    ) -> Result<SimResult> {
        let t_app = Instant::now();
        let n_pis = self.graph.primary_inputs().len();
        if stimuli.len() != n_pis {
            return Err(CoreError::StimulusMismatch {
                expected: n_pis,
                got: stimuli.len(),
            });
        }
        device.memory().reset_counters();
        // New arena generation: any earlier device-backed result on this
        // device now reports StaleExtraction instead of reading our data.
        let epoch = device.memory().advance_epoch();
        let windows = self.make_windows(duration, self.config.cycle_parallelism);
        let fuse_threshold = opts.fuse_threshold.unwrap_or(self.config.fuse_threshold);

        // --- Input restructuring (the dominant init cost in Table 5).
        let t0 = Instant::now();
        let win_stims = self.restructure(stimuli, &windows, device.workers());
        let restructure_seconds = t0.elapsed().as_secs_f64();

        // --- Adaptive segmentation over windows.
        let n_signals = self.graph.n_signals();
        let mut tc = vec![0u64; n_signals];
        let mut t0_acc = vec![0i64; n_signals];
        let mut t1_acc = vec![0i64; n_signals];
        let mut profile = KernelProfile::empty("resim");
        let mut launches = 0u64;
        let mut fused_launches = 0u64;
        let mut dump_wait = 0.0f64;
        let mut dump_stall = 0.0f64;
        let mut drain_seconds = 0.0f64;
        let mut d2h_batches = 0u64;
        let mut spec_threads = 0u64;
        let mut spec_overflows = 0u64;
        let mut spec_waste = 0u64;
        let mut extraction: Option<ExtractionState> = None;
        let mut spill = opts.spill_waveforms.then(|| SpillSink::new(n_signals));
        let mut segments = 0usize;
        let mut i = 0usize;
        // Start from the caller's cap, or from the segment size that last
        // worked for this shape (skipping the OOM halving re-probe — and
        // its wasted stimulus uploads — on every repeat run).
        let mut chunk = opts
            .segment_windows
            .or_else(|| self.segment_hint(windows.len(), fuse_threshold))
            .unwrap_or(windows.len())
            .clamp(1, windows.len());
        let telemetry = RetryTelemetry::new();
        while i < windows.len() {
            let end = (i + chunk).min(windows.len());
            let plan = self.plan(end - i, fuse_threshold);
            let scratch = self.acquire_scratch(&plan);
            // One attempt = run the batch AND route the finished segment
            // through the active sinks before the arena is recycled. (The
            // spill is drained even for runs that fit in one segment: its
            // contract is a durable host copy that outlives later runs on
            // this session's device.) The drain reads everything back
            // before feeding any sink, so a fault anywhere in the attempt
            // leaves the sinks untouched and the segment re-runs whole —
            // delivery stays exactly-once and bit-identical under retries.
            let mut first_attempt = true;
            let attempt = self.with_retry(0, &telemetry, || {
                if !first_attempt {
                    // A faulted attempt abandoned the batch mid-flight;
                    // scrub its partial writes before re-running.
                    scratch.reset((end - i) * n_signals);
                }
                first_attempt = false;
                let batch = self.run_window_batch(
                    device,
                    &plan,
                    &scratch,
                    &windows[i..end],
                    BatchStimulus::Full(&win_stims[i..end]),
                )?;
                let mut sinks: Vec<&mut dyn WaveformSink> = Vec::new();
                if let Some(sp) = spill.as_mut() {
                    sinks.push(sp);
                }
                if let Some(us) = user_sink.as_mut() {
                    sinks.push(&mut **us);
                }
                let mut drained = 0u64;
                let mut drain_s = 0.0f64;
                if !sinks.is_empty() {
                    let t_drain = Instant::now();
                    drained = self.drain_segment(
                        device,
                        &batch,
                        segments,
                        i,
                        &win_stims[i..end],
                        None,
                        &mut sinks,
                    );
                    drain_s = t_drain.elapsed().as_secs_f64();
                }
                Ok((batch, drained, drain_s))
            });
            self.release_scratch(scratch);
            match attempt {
                Ok((batch, drained, drain_s)) => {
                    for s in 0..n_signals {
                        tc[s] += batch.tc[s];
                        t0_acc[s] += batch.t0[s];
                        t1_acc[s] += batch.t1[s];
                    }
                    profile.accumulate(&batch.kernel_profile);
                    launches += batch.launches;
                    fused_launches += batch.fused_launches;
                    dump_wait += batch.dump_wait_seconds;
                    dump_stall += batch.dump_stall_seconds;
                    spec_threads += batch.spec_threads;
                    spec_overflows += batch.spec_overflows;
                    spec_waste += batch.spec_waste_words;
                    d2h_batches += drained;
                    drain_seconds += drain_s;
                    extraction = Some(ExtractionState {
                        device: Arc::clone(device),
                        ptrs: batch.ptrs,
                        windows: batch.windows,
                        n_signals,
                        epoch,
                    });
                    segments += 1;
                    i = end;
                }
                Err(CoreError::OutOfMemory { .. }) if chunk > 1 => {
                    telemetry.oom_retry();
                    chunk = chunk.div_ceil(2);
                }
                Err(e) => return Err(e),
            }
        }
        if opts.segment_windows.is_none() && chunk < windows.len() {
            self.record_segment_hint(windows.len(), fuse_threshold, chunk);
        }

        // --- Assemble SAIF and result.
        let (saif, toggle_counts) = self.assemble_saif(stimuli, duration, &tc, &t0_acc, &t1_acc);
        let spec = device.spec();
        let h2d_bytes = device.memory().h2d_bytes() + self.graph.device_bytes();
        // D2H traffic is exactly the sink/spill waveform readback (the
        // SAIF scan and extraction read device memory in place).
        let d2h_bytes = device.memory().d2h_bytes();
        let sync_launch_seconds = launches as f64 * spec.launch_overhead;
        let app_profile = AppPhaseProfile {
            h2d_seconds: h2d_bytes as f64 / spec.pcie_bw,
            readback_seconds: d2h_bytes as f64 / spec.pcie_bw,
            sync_launch_seconds,
            kernel_seconds: (profile.modeled_seconds - sync_launch_seconds).max(0.0),
            restructure_seconds,
            dump_seconds: dump_wait,
            dump_stall_seconds: dump_stall,
            drain_seconds,
            d2h_batches,
            launches,
            fused_launches,
            h2d_bytes,
            d2h_bytes,
            speculative_hit_rate: spec_hit_rate(spec_threads, spec_overflows),
            overflow_repairs: spec_overflows,
            predicted_waste_words: spec_waste,
            faults_injected: telemetry.faults(),
            segment_retries: telemetry.retries(),
            failovers: 0,
            backoff_seconds: telemetry.backoff_seconds(),
            oom_retries: telemetry.oom_retries(),
        };
        if let Some(sp) = spill.as_mut() {
            sp.seal();
        }
        Ok(SimResult {
            saif,
            kernel_profile: profile,
            app_profile,
            wall_seconds: t_app.elapsed().as_secs_f64(),
            toggle_counts,
            duration,
            segments,
            // A spilled run is served entirely from its durable host copy;
            // device-backed extraction is only kept when no spill exists
            // (and is valid until the next run recycles the arena).
            extraction: if segments == 1 && spill.is_none() {
                extraction
            } else {
                None
            },
            spilled: spill,
        })
    }

    /// Splits `[0, duration)` into up to `slots` windows aligned to
    /// `window_align` ticks.
    pub(crate) fn make_windows(&self, duration: SimTime, slots: usize) -> Vec<(SimTime, SimTime)> {
        let align = i64::from(self.config.window_align.max(1));
        let duration64 = i64::from(duration.max(1));
        let slots = slots.max(1) as i64;
        let aligned_units = (duration64 + align - 1) / align;
        let units_per_window = ((aligned_units + slots - 1) / slots).max(1);
        let window_len = units_per_window * align;
        let mut out = Vec::new();
        let mut start = 0i64;
        while start < duration64 {
            let end = (start + window_len).min(duration64);
            out.push((start as SimTime, end as SimTime));
            start = end;
        }
        out
    }

    /// Cuts every stimulus into per-window re-based waveforms.
    ///
    /// Windows are independent, so the restructuring — the dominant init
    /// cost in Table 5 — fans out across the device's host workers.
    /// `workers` is the executing device's host-worker count, so the
    /// "OpenMP-equivalent" CPU regime (`run_cpu`) restructures with the
    /// same thread cap it simulates with.
    pub(crate) fn restructure(
        &self,
        stimuli: &[Waveform],
        windows: &[(SimTime, SimTime)],
        workers: usize,
    ) -> Vec<Vec<Waveform>> {
        let cut = |&(s, e): &(SimTime, SimTime)| -> Vec<Waveform> {
            stimuli.iter().map(|w| w.window(s, e)).collect()
        };
        let workers = workers.min(windows.len());
        if workers <= 1 || windows.len() * stimuli.len() < 64 {
            return windows.iter().map(cut).collect();
        }
        let mut out: Vec<Vec<Waveform>> = Vec::new();
        out.resize_with(windows.len(), Vec::new);
        let chunk = windows.len().div_ceil(workers);
        crate::sync::thread::scope(|s| {
            for (win_chunk, out_chunk) in windows.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (w, slot) in win_chunk.iter().zip(out_chunk) {
                        *slot = cut(w);
                    }
                });
            }
        })
        // panic-ok: scope join — re-raises a child worker's panic so it
        // reaches the engine's audited unwind boundary.
        .expect("restructure worker panicked");
        out
    }

    /// Builds the SAIF document: primary inputs straight from the stimulus,
    /// gate outputs from the kernel-side accumulators.
    pub(crate) fn assemble_saif(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        tc: &[u64],
        t0: &[i64],
        t1: &[i64],
    ) -> (SaifDocument, Vec<u64>) {
        let graph = &self.graph;
        let mut toggle_counts = vec![0u64; graph.n_signals()];
        let mut doc = SaifDocument::new(graph.name(), i64::from(duration));
        for (k, &pi) in graph.primary_inputs().iter().enumerate() {
            let w = &stimuli[k];
            let (d0, d1) = w.durations(duration);
            // Clip TC like T0/T1: stimulus toggles past `duration` are
            // outside the run (the windows never simulate them) and must
            // not count — and the streaming SAIF sink, which only ever
            // sees in-window toggles, stays equal to this document.
            let tc = w.toggle_count_clipped(duration) as u64;
            toggle_counts[pi.index()] = tc;
            doc.nets.insert(
                graph.signal_name(pi).to_string(),
                SaifRecord {
                    t0: d0,
                    t1: d1,
                    tx: 0,
                    tc,
                    ig: 0,
                },
            );
        }
        for s in 0..graph.n_signals() {
            let sid = gatspi_graph::SignalId(s as u32);
            if graph.driver(sid).is_none() {
                continue;
            }
            toggle_counts[s] = tc[s];
            doc.nets.insert(
                graph.signal_name(sid).to_string(),
                SaifRecord {
                    t0: t0[s],
                    t1: t1[s],
                    tx: 0,
                    tc: tc[s],
                    ig: 0,
                },
            );
        }
        (doc, toggle_counts)
    }

    /// Simulates one batch of windows on `device` (one memory segment)
    /// against a prebuilt `plan`: uploads stimulus, runs the two-pass
    /// levelized schedule (fusing runs of small levels into single phased
    /// launches) as an **overlapped pipeline**, and returns the
    /// accumulators.
    ///
    /// Pipeline structure (see the README's executor map):
    ///
    /// * the store pass itself publishes every output's pointer and length
    ///   into the shared tables (folded publication — no host per-slot
    ///   store loop survives);
    /// * the remaining host publish work per level (per-signal length sums
    ///   and SAIF dump enqueueing) is a *ticket* handed to a publish
    ///   worker, which fans wide levels out across host workers
    ///   partitioned by gate range and enqueues dump messages in
    ///   ring-reserved chunks;
    /// * every level of a fused group owns a disjoint slab range of the
    ///   [`BatchScratch`] count/base column, so level `L`'s publish
    ///   overlaps any number of later levels' phases without fencing
    ///   ([`SimConfig::pipeline_depth`]` = 1` forces the serial pipeline);
    ///   base assignment is one carry-chained segmented prefix-sum over
    ///   the group slab ([`GroupAssigner`]);
    /// * an epoch fence at every launch-group boundary waits for all
    ///   outstanding tickets, so the length sums feeding the next group's
    ///   modeled working set are consistent and the column can be reused.
    ///
    /// The per-level loop is allocation-free: scratch buffers live in the
    /// caller-provided [`BatchScratch`] arena, working sets come from
    /// running per-signal sums, and dump messages travel through a
    /// preallocated ring.
    pub(crate) fn run_window_batch(
        &self,
        device: &Device,
        schedule: &LevelSchedule,
        scratch: &BatchScratch,
        windows: &[(SimTime, SimTime)],
        stim: BatchStimulus<'_>,
    ) -> Result<WindowBatch> {
        let graph = &*self.graph;
        let n_signals = graph.n_signals();
        let nw = windows.len();
        debug_assert_eq!(schedule.nw, nw, "plan window count must match batch");
        let capacity = device.memory().len();
        let depth = self.config.pipeline_depth.clamp(1, 2);
        let mut host = HostState::default();

        // Upload the stimulus: per (window, signal), one even-aligned slice
        // of raw device words (even bases keep the word-index parity
        // encoding of values intact).
        let mut upload = |w: usize, s: usize, raw: &[i32]| -> Result<()> {
            let words = raw.len();
            let base = host.bump + (host.bump & 1);
            if base + words > capacity {
                return Err(CoreError::OutOfMemory {
                    requested: base + words,
                    capacity,
                });
            }
            device.memory().h2d(base, raw);
            // relaxed-ok: the upload runs on the engine thread before any
            // launch of this batch; the launch's thread spawns (and the
            // phase gate, for fused groups) publish these slots to kernel
            // threads.
            scratch.ptrs[w * n_signals + s].store(base as u32, Ordering::Relaxed);
            // relaxed-ok: see above.
            scratch.lens[w * n_signals + s].store(words as u32, Ordering::Relaxed);
            // relaxed-ok: see above.
            scratch.len_sum[s].fetch_add(words as u64, Ordering::Relaxed);
            host.bump = base + words;
            Ok(())
        };
        match stim {
            BatchStimulus::Full(win_stims) => {
                for (w, stims) in win_stims.iter().enumerate() {
                    for (k, &pi) in graph.primary_inputs().iter().enumerate() {
                        upload(w, pi.index(), stims[k].raw())?;
                    }
                }
            }
            BatchStimulus::Boundary {
                spill,
                boundary,
                pi_stims,
                window_base,
            } => {
                for (w, w_pis) in pi_stims.iter().enumerate().take(nw) {
                    let mut pi_j = 0usize;
                    for &s in boundary {
                        let s = s as usize;
                        if self.pi_of[s] != u32::MAX {
                            let raw = w_pis[pi_j].raw();
                            pi_j += 1;
                            upload(w, s, raw)?;
                            continue;
                        }
                        let ptr = spill.ptrs[(window_base + w) * n_signals + s];
                        if ptr == u64::MAX {
                            // Floating in the previous run too: absent,
                            // exactly as a full run would leave it.
                            continue;
                        }
                        // The spilled words are the waveform's live device
                        // words truncated at its EOW terminator; re-upload
                        // them verbatim so in-cone consumers read the very
                        // words their peers read in the full run.
                        let from = spill.slice_from(ptr);
                        let end = from
                            .iter()
                            .position(|&x| x == EOW)
                            // panic-ok: spill-format invariant — the store
                            // pass terminates every spilled waveform with
                            // EOW before the segment is retired.
                            .expect("spilled waveform terminates")
                            + 1;
                        upload(w, s, &from[..end])?;
                    }
                }
            }
        }
        host.bump += host.bump & 1; // keep the allocator even-aligned for outputs

        let features = self.config.features;
        let ppp = self.config.path_pulse_percent;
        let avg_delays = &self.avg_delays;
        // Sized so a full level (or fused group) can publish without
        // waiting on the scan — keeps the dumper overlap the async design
        // exists for.
        let ring = DumpRing::with_capacity(schedule.dump_backlog().max(8192));
        let pipe = PublishPipeline::new(schedule.n_levels());

        let mut profile = KernelProfile::empty("resim");
        let mut launches = 0u64;
        let mut fused_launches = 0u64;
        let mut level_err: Option<CoreError> = None;
        let mut dump_wait = 0.0f64;
        // Speculative single-pass mode (see [`Speculation`]): decided per
        // batch so the Auto fallback latch takes effect between segments.
        let speculate = self.speculation_active();
        let mut tally = SpecTally::default();
        // Reusable repair worklist (classic path): columns whose
        // speculative reservation overflowed.
        let mut overflow_cols: Vec<usize> = Vec::new();

        let (tc, t0_acc, t1_acc) = crate::sync::thread::scope(|scope| {
            // Asynchronous SAIF dumper: scans finished waveforms while
            // later levels are still simulating.
            let mem: &DeviceMemory = device.memory();
            let ring_ref = &ring;
            let dumper = scope.spawn(move |_| {
                // Guard: if this thread dies (saif_scan panic), a full
                // ring's push fails loudly instead of spinning forever.
                let _guard = ring_ref.consumer_guard();
                let mut tc = vec![0u64; n_signals];
                let mut t0 = vec![0i64; n_signals];
                let mut t1 = vec![0i64; n_signals];
                while let Some(msg) = ring_ref.pop() {
                    let (c, d0, d1) = saif_scan(mem, msg.ptr, msg.clip);
                    tc[msg.signal as usize] += c;
                    t0[msg.signal as usize] += d0;
                    t1[msg.signal as usize] += d1;
                }
                (tc, t0, t1)
            });

            let pipe_ref = &pipe;
            let schedule_ref = schedule;
            let scratch_ref = scratch;
            let publish_workers = device.workers();
            // Publish worker: drains level tickets in issue order, doing
            // each level's host publish (length sums + dump enqueue) off
            // the launch critical path; wide levels fan out across host
            // workers. Owns the ring's producer side: its exit — normal or
            // unwinding — closes the ring so the dumper always terminates.
            let publisher = scope.spawn(move |_| {
                let _ring_closer = ring_ref.producer_guard();
                let _gone = pipe_ref.worker_guard();
                let mut next = 0usize;
                while let Some(level) = pipe_ref.wait_ticket(next) {
                    publish_level(
                        schedule_ref,
                        scratch_ref,
                        level,
                        windows,
                        ring_ref,
                        publish_workers,
                    );
                    pipe_ref.complete(next);
                    next += 1;
                }
            });
            // If the engine below unwinds (launch expect, bounds assert),
            // this guard closes the ticket stream so the publisher exits,
            // whose own guard then closes the ring so the dumper exits —
            // the scope join propagates the panic instead of deadlocking.
            let _pipe_closer = pipe.producer_guard();

            // One kernel invocation: thread `tid` of `level`, first or
            // second pass. Two-pass mode runs count then store; speculative
            // mode runs the speculative store then the (mostly no-op)
            // repair pass. All lookups index the schedule's dense tables —
            // the baked [`GateDesc`] row plus schedule-local delay slices,
            // no per-event graph indirection; the level's count/base/cap
            // entries live in its own slab range of the scratch column
            // (`col_off` — fused groups stack their levels contiguously,
            // so no two in-flight levels share entries).
            let exec = |level: usize, tid: usize, second: bool, lane: &mut _| {
                let ld = schedule_ref.level(level);
                let col = ld.col_off as usize + tid;
                let gi = tid / nw;
                let w = tid % nw;
                let slot = ld.gate_lo as usize + gi;
                let pins = schedule_ref.pins_of(slot);
                let mut in_ptrs = [0u32; MAX_KERNEL_PINS];
                for (k, &sig) in pins.iter().enumerate() {
                    // relaxed-ok: input pointers were published by a lower
                    // level's store pass behind the launch join (or the
                    // fused phase gate, model test
                    // `phase_boundary_is_a_barrier`); levelization keeps
                    // same-level threads off each other's slots.
                    in_ptrs[k] =
                        scratch_ref.ptrs[w * n_signals + sig as usize].load(Ordering::Relaxed);
                }
                let desc = schedule_ref.desc(slot);
                let pin_base = desc.pin_base as usize;
                let input = GateKernelInput {
                    desc,
                    tts: graph.truth_tables_flat(),
                    luts: graph.delay_luts_flat(),
                    net_delays: schedule_ref.net_delays_of(slot),
                    mem,
                    in_ptrs: &in_ptrs[..pins.len()],
                    features,
                    ppp,
                    avg_delays: &avg_delays[pin_base..pin_base + pins.len()],
                };
                // Folded publication: the storing thread publishes its own
                // output's pointer and length, so no host loop over
                // (gate, window) slots runs after the launch. Levelization
                // makes this race-free — level L inputs are driven strictly
                // below L, so no thread of this launch reads the slots its
                // peers write.
                let publish = |out: &KernelOutput, out_base: usize| {
                    let sig = schedule_ref.out_sig(slot);
                    // relaxed-ok: folded publication — each storing thread
                    // writes only its own output's slots; higher levels
                    // read them behind the launch join / phase gate.
                    scratch_ref.ptrs[w * n_signals + sig].store(out_base as u32, Ordering::Relaxed);
                    // relaxed-ok: see above.
                    scratch_ref.lens[w * n_signals + sig].store(out.words(), Ordering::Relaxed);
                };
                if speculate {
                    if second {
                        // Repair pass: a hit already stored and published
                        // in the speculative pass — nothing to do. An
                        // overflow re-runs an exact store at the base the
                        // post-level scan re-allocated for it.
                        // relaxed-ok: the speculative pass's true packed
                        // output, behind the phase gate / launch join.
                        let packed = scratch_ref.outs()[col].load(Ordering::Relaxed);
                        // relaxed-ok: written by the budget assigner before
                        // the speculative pass, same boundary.
                        let cap = scratch_ref.caps()[col].load(Ordering::Relaxed);
                        if KernelOutput::unpack_words(packed) <= cap {
                            return;
                        }
                        // relaxed-ok: the exact repair base was assigned by
                        // the scan at the boundary preceding this pass.
                        let out_base = scratch_ref.bases()[col].load(Ordering::Relaxed) as usize;
                        let out = simulate_gate(&input, KernelMode::Store { out_base }, lane);
                        publish(&out, out_base);
                    } else {
                        // Speculative pass: store inside the pre-assigned
                        // reservation; on overflow the kernel degrades to
                        // exact counting without touching a word outside
                        // it. The true packed output always lands in the
                        // count column — the scan and the repair pass read
                        // it there.
                        // relaxed-ok: budget assigned before this pass
                        // (host side or the preceding phase boundary).
                        let out_base = scratch_ref.bases()[col].load(Ordering::Relaxed) as usize;
                        // relaxed-ok: see above.
                        let cap = scratch_ref.caps()[col].load(Ordering::Relaxed);
                        let out = simulate_gate(
                            &input,
                            KernelMode::Speculative {
                                out_base,
                                cap: cap as usize,
                            },
                            lane,
                        );
                        // relaxed-ok: each thread writes only its own
                        // column entry; the scan reads it behind the phase
                        // gate / launch join.
                        scratch_ref.outs()[col].store(out.pack(), Ordering::Relaxed);
                        let words = out.words();
                        let words_even = words + (words & 1);
                        // The thread feeds the extent predictor itself
                        // (monotone fetch_max — see `ExtentPredictor`), so
                        // the post-level host scan touches no per-column
                        // state at all on the hit path.
                        schedule_ref
                            .predictor()
                            .observe(schedule_ref.gate(slot), words_even);
                        if words <= cap {
                            publish(&out, out_base);
                            // Saturating: a test-hook cap may be odd,
                            // letting the padded size exceed a hit's cap
                            // by the parity word. Exact predictions (the
                            // steady state) skip the RMW entirely.
                            let slack = u64::from(cap).saturating_sub(u64::from(words_even));
                            if slack != 0 {
                                // relaxed-ok: telemetry accumulator,
                                // drained on the engine thread after the
                                // batch.
                                scratch_ref.spec_waste.fetch_add(slack, Ordering::Relaxed);
                            }
                        } else {
                            // relaxed-ok: the cursor only hands each
                            // overflowing thread a unique slot (threads ≤
                            // column stride); the launch join / phase gate
                            // publishes the slot writes to the scan.
                            let i = scratch_ref.ovf_len.fetch_add(1, Ordering::Relaxed);
                            debug_assert!(i < scratch_ref.ovf.len());
                            // relaxed-ok: see above.
                            scratch_ref.ovf[i].store(col as u32, Ordering::Relaxed);
                        }
                    }
                } else if second {
                    // relaxed-ok: the base was assigned at the count/store
                    // boundary (launch join or phase gate) that precedes
                    // this store thread.
                    let out_base = scratch_ref.bases()[col].load(Ordering::Relaxed) as usize;
                    let out = simulate_gate(&input, KernelMode::Store { out_base }, lane);
                    debug_assert_eq!(
                        out.pack(),
                        // relaxed-ok: written by this level's own count
                        // pass, behind the same boundary.
                        scratch_ref.outs()[col].load(Ordering::Relaxed),
                        "count and store passes diverged"
                    );
                    publish(&out, out_base);
                } else {
                    let out = simulate_gate(&input, KernelMode::Count, lane);
                    // relaxed-ok: each count thread writes only its own
                    // column entry; the prefix-sum reads it behind the
                    // count/store boundary.
                    scratch_ref.outs()[col].store(out.pack(), Ordering::Relaxed);
                }
            };

            // The engine loop runs under `catch_unwind` so an injected (or
            // real) launch fault unwinds to *here*, still inside the scope:
            // the dumper and publisher are then shut down and joined in
            // order, and their own panic payloads (the root cause when a
            // sink died) take priority over the engine's secondary panic.
            // unwind-ok: deferring boundary — the payload is re-raised
            // intact (resume_unwind below, after the joins) and classified
            // by `panic_to_error` at the segment boundary above this scope.
            let engine = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                'groups: for group in schedule.groups() {
                    // Epoch fence: every issued ticket must complete before
                    // this group's modeled working set reads the length sums
                    // (and before its count pass reuses either scratch column).
                    pipe.fence_all();
                    let first = group.levels.start;
                    if group.fused {
                        // --- Fused: one phased launch covers the whole run of
                        // levels; the leader worker does the prefix-sum at
                        // count boundaries and issues the publish ticket at
                        // store boundaries. The launch config carries the
                        // working set visible at launch time (inputs already
                        // stored); each count-phase boundary then reports the
                        // words the level's outputs just allocated, so the L2
                        // model sees the full footprint — launch-time inputs
                        // plus every waveform produced inside the group.
                        let ws: u64 = group
                            .levels
                            .clone()
                            .map(|l| schedule.level_ws(&scratch.len_sum, l))
                            .sum();
                        // Group-batched base assignment: one carry-chained
                        // segmented prefix-sum over the group's contiguous
                        // count slab, advanced a level segment per count
                        // boundary (a level's counts exist only after the
                        // previous level's store phase, so the scan cannot run
                        // ahead of the launch). OOM is detected per level with
                        // the carry left at the last successful level — error
                        // semantics and `host.bump` stay bit-identical to the
                        // per-level serial assignment this replaces.
                        //
                        // Speculative mode drives the same carry differently:
                        // the first level's budgets are reserved host-side
                        // before the launch, later levels' at the preceding
                        // repair boundary (their static fallback bound reads
                        // the lengths that boundary published); even phase
                        // boundaries run the overflow scan instead of the
                        // prefix-sum.
                        let mut assign = GroupAssigner::new(host.bump, capacity, device.workers());
                        let mut group_oom: Option<CoreError> = None;
                        let mut spec_ws = 0u64;
                        if speculate {
                            match assign.advance_budgets(schedule, scratch, first, n_signals) {
                                Ok(words) => spec_ws = words,
                                Err(e) => {
                                    level_err = Some(e);
                                    break 'groups;
                                }
                            }
                        }
                        let cfg = LaunchConfig {
                            threads: group.threads,
                            threads_per_block: self.config.threads_per_block,
                            regs_per_thread: self.config.regs_per_thread,
                            working_set_bytes: 4 * (ws + spec_ws),
                        };
                        let p = device.launch_phased(
                            if speculate {
                                "resim_fused_spec"
                            } else {
                                "resim_fused"
                            },
                            &cfg,
                            schedule.phases(group),
                            |phase, tid, lane| exec(first + phase / 2, tid, phase % 2 == 1, lane),
                            |phase| {
                                let level = first + phase / 2;
                                let ld = schedule_ref.level(level);
                                let (lo, hi) =
                                    (ld.col_off as usize, ld.col_off as usize + ld.threads);
                                if phase % 2 == 0 {
                                    let advanced = if speculate {
                                        // Speculative pass done: scan for
                                        // overflows, re-allocating their exact
                                        // space for the repair phase.
                                        assign.advance_scan(
                                            schedule_ref,
                                            scratch_ref,
                                            level,
                                            &mut overflow_cols,
                                            &mut tally,
                                        )
                                    } else {
                                        assign.advance(
                                            &scratch_ref.outs()[lo..hi],
                                            &scratch_ref.bases()[lo..hi],
                                        )
                                    };
                                    match advanced {
                                        // Output growth of this level, in
                                        // bytes: the incremental working-set
                                        // update (the L2 model sees the full
                                        // in-launch footprint).
                                        Ok(new_words) => Some(4 * new_words),
                                        Err(e) => {
                                            group_oom = Some(e);
                                            None
                                        }
                                    }
                                } else {
                                    if ld.threads < INLINE_PUBLISH_MAX {
                                        // Store/repair phase done (ptrs/lens
                                        // published by the kernel threads). A
                                        // narrow level's remaining publish work
                                        // is a handful of messages — run it
                                        // right here rather than paying a
                                        // cross-thread hand-off. Its slab
                                        // range is its own, so no outstanding
                                        // ticket can collide with it.
                                        publish_level(
                                            schedule_ref,
                                            scratch_ref,
                                            level,
                                            windows,
                                            ring_ref,
                                            1,
                                        );
                                    } else {
                                        // Hand the level's host publish to the
                                        // pipeline. Disjoint slab ranges make
                                        // any number of a group's publishes
                                        // safe in flight, so the overlapped
                                        // mode just issues and moves on — the
                                        // group-boundary epoch fence catches
                                        // up before the column is reused (the
                                        // dump ring is sized for a whole
                                        // group's backlog).
                                        pipe_ref.issue(level);
                                        if depth == 1 {
                                            pipe_ref.fence_all();
                                        }
                                    }
                                    if speculate && level + 1 < group.levels.end {
                                        // Reserve the next level's speculative
                                        // budgets now that this level's
                                        // lengths are final (the first-touch
                                        // static bound reads them).
                                        match assign.advance_budgets(
                                            schedule_ref,
                                            scratch_ref,
                                            level + 1,
                                            n_signals,
                                        ) {
                                            Ok(words) => Some(4 * words),
                                            Err(e) => {
                                                group_oom = Some(e);
                                                None
                                            }
                                        }
                                    } else {
                                        Some(0)
                                    }
                                }
                            },
                        );
                        host.bump = assign.bump();
                        profile.accumulate(&p);
                        launches += 1;
                        fused_launches += 1;
                        if let Some(e) = group_oom {
                            level_err = Some(e);
                            break 'groups;
                        }
                    } else {
                        // --- One wide level on its own launch(es). Two-pass
                        // mode drives the classic count+store schedule on the
                        // pooled phase machinery: one worker scope serves both
                        // passes (the old path spawned and joined a fresh
                        // scope per pass), while the model still charges the
                        // two real kernel launches. Speculative mode replaces
                        // them with one speculative store launch plus — only
                        // when some reservation overflowed — a narrow exact
                        // repair launch over just the overflowed threads.
                        let threads = schedule.level(first).threads;
                        if threads == 0 {
                            continue;
                        }
                        let ws_in = schedule.level_ws(&scratch.len_sum, first);
                        let bump0 = host.bump;
                        let mut new_bump = bump0;
                        let mut classic_oom: Option<CoreError> = None;
                        if speculate {
                            let mut assign = GroupAssigner::new(bump0, capacity, device.workers());
                            match assign.advance_budgets(schedule, scratch, first, n_signals) {
                                Ok(reserved) => {
                                    let cfg = LaunchConfig {
                                        threads,
                                        threads_per_block: self.config.threads_per_block,
                                        regs_per_thread: self.config.regs_per_thread,
                                        working_set_bytes: 4 * (ws_in + reserved),
                                    };
                                    let p = device.launch("resim_spec", &cfg, |tid, lane| {
                                        exec(first, tid, false, lane)
                                    });
                                    profile.accumulate(&p);
                                    launches += 1;
                                    match assign.advance_scan(
                                        schedule,
                                        scratch,
                                        first,
                                        &mut overflow_cols,
                                        &mut tally,
                                    ) {
                                        Ok(realloc) => {
                                            if !overflow_cols.is_empty() {
                                                // The speculative pass left
                                                // every overflow's true packed
                                                // count in the count column,
                                                // so the repair is store-only
                                                // — no second count pass.
                                                let rcfg = LaunchConfig {
                                                    threads: overflow_cols.len(),
                                                    threads_per_block: self
                                                        .config
                                                        .threads_per_block,
                                                    regs_per_thread: self.config.regs_per_thread,
                                                    working_set_bytes: 4 * (ws_in + realloc),
                                                };
                                                let cols = &overflow_cols;
                                                let p = device.launch(
                                                    "resim_repair",
                                                    &rcfg,
                                                    |j, lane| exec(first, cols[j], true, lane),
                                                );
                                                profile.accumulate(&p);
                                                launches += 1;
                                            }
                                            new_bump = assign.bump();
                                        }
                                        Err(e) => classic_oom = Some(e),
                                    }
                                }
                                Err(e) => classic_oom = Some(e),
                            }
                        } else {
                            let cfg = LaunchConfig {
                                threads,
                                threads_per_block: self.config.threads_per_block,
                                regs_per_thread: self.config.regs_per_thread,
                                working_set_bytes: 4 * ws_in,
                            };
                            // Host boundary between the passes: prefix-sum
                            // allocation of output waveforms, parallelized
                            // across device workers for wide levels (classic
                            // levels own the column from offset 0). OOM aborts
                            // the store pass with `host.bump` untouched —
                            // identical semantics to the old separate-launch
                            // path.
                            let p = device.launch_two_pass(
                                "resim_classic",
                                &cfg,
                                |store, tid, lane| exec(first, tid, store, lane),
                                || match assign_bases(
                                    &scratch_ref.outs()[..threads],
                                    &scratch_ref.bases()[..threads],
                                    bump0,
                                    capacity,
                                    device.workers(),
                                ) {
                                    Ok((bump, new_words)) => {
                                        new_bump = bump;
                                        Some(4 * new_words)
                                    }
                                    Err(e) => {
                                        classic_oom = Some(e);
                                        None
                                    }
                                },
                            );
                            profile.accumulate(&p);
                            launches += 2;
                        }
                        host.bump = new_bump;
                        if let Some(e) = classic_oom {
                            level_err = Some(e);
                            break 'groups;
                        }

                        // Pointers and lengths were published by the store
                        // launch itself; only the length sums and the dump
                        // enqueue remain. Narrow levels (unfused schedules)
                        // publish inline — the group-top fence guarantees no
                        // ticket is outstanding here; wide levels ticket the
                        // work so it spreads across workers and overlaps the
                        // dumper until the next group's epoch fence.
                        if threads < INLINE_PUBLISH_MAX {
                            publish_level(schedule, scratch, first, windows, &ring, 1);
                        } else {
                            pipe.issue(first);
                            if depth == 1 {
                                pipe.fence_all();
                            }
                        }
                    }
                }
            }));

            // Shutdown: end the ticket stream, let the publisher drain the
            // outstanding publishes (its guard closes the ring on exit),
            // then account the tail of the SAIF scan as dump wait. Joins
            // are explicit so each helper's own panic payload survives —
            // the scope's auto-join would replace it with a generic
            // message, and payload *types* are how the segment boundary
            // classifies faults.
            pipe.close();
            let publisher_exit = publisher.join();
            // Publisher exit closed the ring; from here the clock measures
            // only the SAIF scanner's drain tail (the dump-wait telemetry
            // must not absorb publish time — publish has its own overlap
            // accounting via the ticket fences).
            let t_wait = Instant::now();
            let dumper_exit = dumper.join();
            dump_wait = t_wait.elapsed().as_secs_f64();
            if let Err(payload) = publisher_exit {
                std::panic::resume_unwind(payload);
            }
            let acc = match dumper_exit {
                Ok(acc) => acc,
                // A dead SAIF scanner is the root cause of whatever the
                // engine tripped over (typically a full-ring push);
                // surface it as the sink failure it is.
                // panic-ok: typed payload, registered in the unwind
                // manifest and classified at the engine boundary.
                Err(payload) => std::panic::panic_any(crate::ring::SinkClosedPanic {
                    detail: format!("SAIF scan panicked: {}", payload_text(payload.as_ref())),
                }),
            };
            if let Err(payload) = engine {
                std::panic::resume_unwind(payload);
            }
            acc
        })
        // panic-ok: scope join — re-raises a worker panic (typed
        // payloads included) to the caller's audited boundary.
        .expect("simulation scope panicked");

        // The kernel threads accumulated hit slack in the scratch; drain
        // it even on the error path (scratch is pooled, so it must leave
        // zeroed) and fold it into the batch tally next to the
        // abandoned-reservation waste the overflow scan counted.
        // relaxed-ok: the simulation scope joined every worker above.
        tally.waste_words += scratch.spec_waste.swap(0, Ordering::Relaxed);
        if let Some(e) = level_err {
            return Err(e);
        }
        // Feed the Auto fallback latch before the batch result leaves the
        // session — every run path (plain, incremental, multi-GPU shard)
        // funnels through here.
        self.note_speculation(tally.threads, tally.overflows);
        Ok(WindowBatch {
            windows: windows.to_vec(),
            ptrs: scratch.ptrs_snapshot(nw * n_signals),
            lens: scratch.lens_snapshot(nw * n_signals),
            tc,
            t0: t0_acc,
            t1: t1_acc,
            kernel_profile: profile,
            launches,
            fused_launches,
            dump_wait_seconds: dump_wait,
            dump_stall_seconds: ring.producer_stall_seconds(),
            spec_threads: tally.threads,
            spec_overflows: tally.overflows,
            spec_waste_words: tally.waste_words,
        })
    }
}

impl Session {
    /// Streams one finished segment's waveforms to the active sinks
    /// (host spill and/or a caller-supplied sink) before the arena is
    /// recycled; returns the number of D2H batches issued. Gate outputs
    /// are read back over the modeled D2H path and surface as
    /// `AppPhaseProfile::{readback_seconds, d2h_bytes}`; primary-input
    /// windows are fed from the host-resident restructured stimulus
    /// (byte-identical to the device copy), so the readback model only
    /// charges for data the host does not already hold.
    ///
    /// Coalescing is **segment-global**: every stored allocation of the
    /// whole batch is sorted by device pointer and pointer-adjacent
    /// allocations — the next waveform starting where the previous ends,
    /// allowing the single parity-pad word the even-aligned allocator may
    /// leave — merge into one `mem.d2h` range each. The arena assigns
    /// thread `gate × nw + window` of each level consecutive space, so a
    /// level's outputs *across all windows* form one contiguous region and
    /// the transfer count collapses to ≈ one batch per level (the old
    /// per-window coalescing found adjacency only inside a window and
    /// issued ≈ one transfer per waveform). Runs are read back in parallel
    /// across the device's host workers into one segment buffer — bounded
    /// by the device arena size, which the segment was sized to fit — and
    /// the sinks are then fed in deterministic (window, ascending signal)
    /// order, the exact call sequence of the old drain.
    ///
    /// `only` restricts the drain to flagged signals (an incremental run
    /// delivers in-cone waveforms only; out-of-cone entries stay untouched
    /// in the derived spill). When set, primary-input windows are skipped
    /// entirely, so `win_stims` may be empty.
    #[allow(clippy::too_many_arguments)]
    fn drain_segment(
        &self,
        device: &Device,
        batch: &WindowBatch,
        segment: usize,
        window_base: usize,
        win_stims: &[Vec<Waveform>],
        only: Option<&[bool]>,
        sinks: &mut [&mut dyn WaveformSink],
    ) -> u64 {
        let n_signals = self.graph.n_signals();
        let mem = device.memory();
        let nw = batch.windows.len();

        // Every stored gate-output allocation of the whole segment:
        // (device ptr, words, window × n_signals + signal).
        let mut entries: Vec<(u32, u32, u32)> = Vec::new();
        for w in 0..nw {
            let row = w * n_signals;
            for (s, &k) in self.pi_of.iter().enumerate() {
                if k != u32::MAX {
                    continue;
                }
                if let Some(flags) = only {
                    if !flags[s] {
                        continue;
                    }
                }
                if batch.ptrs[row + s] != u32::MAX {
                    entries.push((batch.ptrs[row + s], batch.lens[row + s], (row + s) as u32));
                }
            }
        }
        entries.sort_unstable_by_key(|e| e.0);

        // Coalesce into maximal pointer-adjacent runs; record every
        // entry's offset into the concatenated segment buffer.
        let mut offs = vec![u32::MAX; nw * n_signals];
        let mut runs: Vec<(u32, u32, u32)> = Vec::new(); // (dev ptr, words, dest)
        let mut dest = 0u32;
        let mut i = 0usize;
        while i < entries.len() {
            let run_ptr = entries[i].0;
            let mut end_ptr = run_ptr + entries[i].1;
            let mut j = i + 1;
            while j < entries.len() {
                let (p, l, _) = entries[j];
                debug_assert!(p >= end_ptr, "allocations are disjoint");
                if p - end_ptr <= 1 {
                    end_ptr = p + l;
                    j += 1;
                } else {
                    break;
                }
            }
            for &(p, _, idx) in &entries[i..j] {
                offs[idx as usize] = dest + (p - run_ptr);
            }
            runs.push((run_ptr, end_ptr - run_ptr, dest));
            dest += end_ptr - run_ptr;
            i = j;
        }

        // Read the runs back, fanning out across host workers for large
        // segments (each worker fills a disjoint slice of the buffer).
        let mut data = vec![0i32; dest as usize];
        let workers = device.workers().min(runs.len());
        if workers <= 1 || (dest as usize) < 1 << 16 {
            for &(p, l, off) in &runs {
                data[off as usize..(off + l) as usize]
                    .copy_from_slice(&mem.d2h(p as usize, l as usize));
            }
        } else {
            let per = runs.len().div_ceil(workers);
            crate::sync::thread::scope(|scope| {
                let mut rest: &mut [i32] = &mut data;
                let mut consumed = 0u32;
                let mut handles = Vec::with_capacity(workers);
                for chunk in runs.chunks(per) {
                    let words: u32 = chunk.iter().map(|r| r.1).sum();
                    let (mine, tail) = rest.split_at_mut(words as usize);
                    rest = tail;
                    let base = consumed;
                    consumed += words;
                    handles.push(scope.spawn(move |_| {
                        for &(p, l, off) in chunk {
                            let o = (off - base) as usize;
                            mine[o..o + l as usize]
                                .copy_from_slice(&mem.d2h(p as usize, l as usize));
                        }
                    }));
                }
                // Join each worker explicitly so a transfer fault's typed
                // panic payload survives to the segment boundary (the
                // scope's auto-join would replace it with a generic
                // message that cannot be classified for retry).
                for h in handles {
                    if let Err(payload) = h.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            })
            // panic-ok: scope join — re-raises the drain worker's panic.
            .expect("spill drain worker panicked");
        }

        // Feed the sinks in deterministic (window, ascending signal) order.
        for (w, &(start, end)) in batch.windows.iter().enumerate() {
            let info = WindowInfo {
                window: window_base + w,
                segment,
                start,
                end,
            };
            let row = w * n_signals;
            for (s, &k) in self.pi_of.iter().enumerate() {
                if let Some(flags) = only {
                    if !flags[s] {
                        continue;
                    }
                }
                if batch.ptrs[row + s] == u32::MAX {
                    continue;
                }
                let raw: &[i32] = if k != u32::MAX {
                    debug_assert!(only.is_none(), "filtered drains never cover PIs");
                    win_stims[w][k as usize].raw()
                } else {
                    let off = offs[row + s] as usize;
                    &data[off..off + batch.lens[row + s] as usize]
                };
                for sink in sinks.iter_mut() {
                    sink.waveform(s, &info, raw);
                }
            }
        }
        runs.len() as u64
    }
}

/// Best-effort human-readable text of an unknown panic payload.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Classifies a panic caught at the segment boundary into the structured
/// error the retry/failover machinery dispatches on. Typed payloads carry
/// their own classification ([`gatspi_gpu::DeviceFaultPanic`] from the
/// fault choke points, [`crate::ring::SinkClosedPanic`] from a dump ring
/// whose consumer died); anything else is an engine/worker bug — a
/// non-retryable worker fault on `device`.
fn panic_to_error(device: usize, payload: Box<dyn std::any::Any + Send>) -> CoreError {
    let payload = match payload.downcast::<gatspi_gpu::DeviceFaultPanic>() {
        Ok(p) => {
            return CoreError::DeviceFault {
                device: p.device,
                kind: p.kind,
                retryable: p.retryable,
            }
        }
        Err(p) => p,
    };
    let payload = match payload.downcast::<crate::ring::SinkClosedPanic>() {
        Ok(p) => return CoreError::SinkClosed { detail: p.detail },
        Err(p) => p,
    };
    // The message would otherwise be lost to the structured error; log it
    // for diagnosis before reporting the fault.
    eprintln!(
        "gatspi: worker panic isolated at segment boundary: {}",
        payload_text(payload.as_ref())
    );
    CoreError::DeviceFault {
        device,
        kind: gatspi_gpu::FaultKind::Worker,
        retryable: false,
    }
}

/// Fault-recovery counters for one run, shared across the threads of a
/// multi-GPU fleet; drained into [`AppPhaseProfile`] when the run ends.
#[derive(Debug)]
struct RetryTelemetry {
    faults: AtomicU64,
    retries: AtomicU64,
    oom_retries: AtomicU64,
    failovers: AtomicU64,
    backoff_nanos: AtomicU64,
}

impl RetryTelemetry {
    fn new() -> Self {
        RetryTelemetry {
            faults: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            oom_retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            backoff_nanos: AtomicU64::new(0),
        }
    }

    fn fault(&self) {
        // relaxed-ok: pure statistics — incremented on whichever thread
        // observed the event, read after every worker joined.
        self.faults.fetch_add(1, Ordering::Relaxed);
    }
    fn retry(&self) {
        // relaxed-ok: see `fault`.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }
    fn oom_retry(&self) {
        // relaxed-ok: see `fault`.
        self.oom_retries.fetch_add(1, Ordering::Relaxed);
    }
    fn failover(&self) {
        // relaxed-ok: see `fault`.
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }
    fn add_backoff(&self, seconds: f64) {
        // relaxed-ok: see `fault`.
        self.backoff_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }
    fn faults(&self) -> u64 {
        // relaxed-ok: see `fault`.
        self.faults.load(Ordering::Relaxed)
    }
    fn retries(&self) -> u64 {
        // relaxed-ok: see `fault`.
        self.retries.load(Ordering::Relaxed)
    }
    fn oom_retries(&self) -> u64 {
        // relaxed-ok: see `fault`.
        self.oom_retries.load(Ordering::Relaxed)
    }
    fn failovers(&self) -> u64 {
        // relaxed-ok: see `fault`.
        self.failovers.load(Ordering::Relaxed)
    }
    fn backoff_seconds(&self) -> f64 {
        // relaxed-ok: see `fault`.
        self.backoff_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

/// Failover work queue: the window sub-ranges a dead device left behind,
/// claimed by survivor threads through a single atomic cursor. Each
/// `claim` hands out a distinct range (or `None` once the queue is dry),
/// so a range is re-executed by exactly one survivor — model test
/// `failover_ranges_claimed_exactly_once` explores the handoff.
struct ShardQueue {
    /// Absolute `(start_window, count)` ranges, immutable once built.
    ranges: Vec<(usize, usize)>,
    /// Next unclaimed index.
    next: AtomicUsize,
}

impl ShardQueue {
    fn new(ranges: Vec<(usize, usize)>) -> Self {
        ShardQueue {
            ranges,
            next: AtomicUsize::new(0),
        }
    }

    fn claim(&self) -> Option<(usize, usize)> {
        // relaxed-ok: the cursor only partitions immutable ranges among
        // claimants — each fetch_add returns a unique index, and the
        // ranges vector itself is published by the thread spawn.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.ranges.get(i).copied()
    }
}

impl Session {
    /// Runs one segment attempt under `catch_unwind`, classifying panics
    /// via [`panic_to_error`] and retrying transient device faults per the
    /// session's [`crate::RetryPolicy`] with exponential backoff.
    ///
    /// Both callers deliver to sinks only at the very end of a fully
    /// successful attempt (all device work and readback precede the first
    /// sink feed), which is what makes a retried segment exactly-once for
    /// every sink — a faulted attempt has observable effects only on
    /// device byte counters and this telemetry.
    fn with_retry<T>(
        &self,
        device_index: usize,
        telemetry: &RetryTelemetry,
        mut attempt: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let policy = self.config.retry;
        let max_attempts = policy.max_attempts.max(1);
        let mut attempts = 0u32;
        loop {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut attempt))
                .unwrap_or_else(|payload| Err(panic_to_error(device_index, payload)));
            attempts += 1;
            match outcome {
                Err(CoreError::DeviceFault {
                    retryable: true, ..
                }) if attempts < max_attempts => {
                    telemetry.fault();
                    telemetry.retry();
                    let delay = policy.delay_seconds(attempts);
                    if delay > 0.0 {
                        telemetry.add_backoff(delay);
                        crate::sync::thread::sleep(std::time::Duration::from_secs_f64(delay));
                    }
                }
                Err(e @ CoreError::DeviceFault { .. }) => {
                    telemetry.fault();
                    return Err(e);
                }
                other => return other,
            }
        }
    }

    /// Drains one finished multi-GPU shard batch through `sinks`, retrying
    /// transient readback faults. A fault that survives the retries means
    /// the batch's waveforms are stranded on a dead device and the whole
    /// shard must re-run elsewhere — safe, because the drain feeds sinks
    /// only after every readback completed, so no sink observed any of it.
    #[allow(clippy::too_many_arguments)]
    fn drain_shard(
        &self,
        device: &Device,
        device_index: usize,
        batch: &WindowBatch,
        start: usize,
        win_stims: &[Vec<Waveform>],
        sinks: &mut [&mut dyn WaveformSink],
        telemetry: &RetryTelemetry,
    ) -> Result<u64> {
        if sinks.is_empty() {
            return Ok(0);
        }
        self.with_retry(device_index, telemetry, || {
            Ok(self.drain_segment(
                device,
                batch,
                device_index,
                start,
                win_stims,
                None,
                &mut *sinks,
            ))
        })
    }

    /// Replays a reorder buffer's windows `[from_window, ..)` to `sink` in
    /// ascending (window, signal) order — the exact stream a fault-free
    /// multi-GPU run would have produced from `from_window` on, with each
    /// window's segment attributed to the shard that owned it.
    fn replay_spill(
        &self,
        buf: &SpillSink,
        shards: &[(usize, usize)],
        from_window: usize,
        sink: &mut dyn WaveformSink,
    ) {
        let n_signals = self.graph.n_signals();
        let mut segment = 0usize;
        for w in from_window..buf.windows.len() {
            while {
                let (s, c) = shards[segment];
                c == 0 || w >= s + c
            } {
                segment += 1;
            }
            let (start, end) = buf.windows[w];
            let info = WindowInfo {
                window: w,
                segment,
                start,
                end,
            };
            for s in 0..n_signals {
                let ptr = buf.ptrs[w * n_signals + s];
                if ptr == u64::MAX {
                    continue;
                }
                // The spill stores each waveform's live words, terminated
                // at its EOW — exactly what a direct drain would have let
                // the sink read (ghost words past EOW are never decoded).
                let raw = buf.slice_from(ptr);
                let len = raw
                    .iter()
                    .position(|&x| x == EOW)
                    .map_or(raw.len(), |e| e + 1);
                sink.waveform(s, &info, &raw[..len]);
            }
        }
    }
}

/// The level-publish pipeline: the engine thread (or the fused launch's
/// leader worker) *issues* one ticket per finished level; a dedicated
/// publish worker drains them in order, each ticket covering the level's
/// host publish work — per-signal length-sum accounting and SAIF dump
/// enqueueing. Levels of a fused group read disjoint slab ranges of the
/// scratch column, so any number of a group's tickets may be in flight;
/// the epoch fence at every group boundary waits for full consistency
/// before length sums feed the L2 model and the column is reused.
///
/// Single issuer, single worker; both sides are lock-free (the issue/
/// complete cursors pair release stores with acquire loads, the same
/// discipline as the dump ring).
struct PublishPipeline {
    /// Level index per ticket slot, written before `issued` advances.
    tickets: Vec<AtomicUsize>,
    /// Tickets issued so far.
    issued: AtomicUsize,
    /// Tickets whose publish work has completed.
    completed: AtomicUsize,
    /// No further tickets will be issued.
    closed: AtomicBool,
    /// Set when the publish worker exits (normally or by panic); lets a
    /// fence fail loudly instead of waiting forever.
    worker_gone: AtomicBool,
}

/// RAII marker held by the publish worker; flags the pipeline on drop —
/// including unwinding out of a panicking publish.
struct PublishWorkerGuard<'a>(&'a PublishPipeline);

impl Drop for PublishWorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.worker_gone.store(true, Ordering::Release);
    }
}

/// RAII closer for the issuing side: ends the ticket stream on drop so the
/// publish worker terminates even when the engine unwinds mid-batch.
struct PublishProducerGuard<'a>(&'a PublishPipeline);

impl Drop for PublishProducerGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl PublishPipeline {
    /// A pipeline able to carry one ticket per level.
    fn new(n_levels: usize) -> Self {
        let mut tickets = Vec::with_capacity(n_levels);
        tickets.resize_with(n_levels, || AtomicUsize::new(0));
        PublishPipeline {
            tickets,
            issued: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            worker_gone: AtomicBool::new(false),
        }
    }

    /// Registers the publish worker; keep the guard alive for the whole
    /// drain loop.
    fn worker_guard(&self) -> PublishWorkerGuard<'_> {
        PublishWorkerGuard(self)
    }

    /// RAII closer for the issuing side (see [`PublishProducerGuard`]).
    fn producer_guard(&self) -> PublishProducerGuard<'_> {
        PublishProducerGuard(self)
    }

    /// Issues the publish ticket for `level`. Single issuer at a time —
    /// the engine thread between launches or the fused launch's leader at
    /// a phase boundary; those hand-offs are ordered by launch joins and
    /// barriers, exactly like the scratch tables themselves.
    fn issue(&self, level: usize) {
        // relaxed-ok: single issuer at a time (see doc above) reading its
        // own cursor; successive issuers are ordered by launch joins.
        let k = self.issued.load(Ordering::Relaxed);
        // relaxed-ok: the ticket slot is published to the worker by the
        // `issued` Release store below (model test
        // `publish_tickets_never_skip_or_tear`).
        self.tickets[k].store(level, Ordering::Relaxed);
        self.issued.store(k + 1, Ordering::Release);
    }

    /// Worker side: blocks until ticket `next` is issued (returning its
    /// level) or the stream ends (`None`).
    fn wait_ticket(&self, next: usize) -> Option<usize> {
        let mut spins = 0u32;
        loop {
            if self.issued.load(Ordering::Acquire) > next {
                // relaxed-ok: the Acquire load above synchronized with the
                // issuer's Release store, which happens-after this slot's
                // write.
                return Some(self.tickets[next].load(Ordering::Relaxed));
            }
            if self.closed.load(Ordering::Acquire) && self.issued.load(Ordering::Acquire) <= next {
                return None;
            }
            backoff(&mut spins);
        }
    }

    /// Worker side: marks ticket `next` complete (its length sums and dump
    /// messages are now visible behind an acquire fence).
    fn complete(&self, next: usize) {
        self.completed.store(next + 1, Ordering::Release);
    }

    /// Blocks until at least `target` tickets completed.
    ///
    /// # Panics
    ///
    /// Panics if the publish worker terminated with the target
    /// unreachable — propagating beats deadlocking the engine.
    fn fence(&self, target: usize) {
        let mut spins = 0u32;
        while self.completed.load(Ordering::Acquire) < target {
            assert!(
                !self.worker_gone.load(Ordering::Acquire),
                "publish worker terminated with tickets outstanding"
            );
            backoff(&mut spins);
        }
    }

    /// Epoch fence: every issued ticket has completed; the per-signal
    /// length sums are fully consistent.
    fn fence_all(&self) {
        // relaxed-ok: called on the issuing side, reading its own cursor.
        self.fence(self.issued.load(Ordering::Relaxed));
    }

    /// Ends the ticket stream; `wait_ticket` returns `None` once the
    /// issued tickets drain.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

/// Publishes one finished level on the pipeline worker: advances the
/// running per-signal length sums and streams every (gate, window)
/// waveform to the SAIF dumper ring in reserved chunks. Output pointers
/// and lengths were already published by the store pass itself (folded
/// publication), so this is the *entire* remaining host cost of a level.
/// Wide levels partition their gate range across host workers — each gate
/// appears in exactly one range and owns its output signal, so the length
/// sums need no cross-worker coordination beyond the relaxed atomic add.
/// Allocation-free: chunk buffers live on the worker stacks.
fn publish_level(
    schedule: &LevelSchedule,
    scratch: &BatchScratch,
    level: usize,
    windows: &[(SimTime, SimTime)],
    ring: &DumpRing,
    workers: usize,
) {
    let ld = schedule.level(level);
    let nw = windows.len();
    let n_gates = (ld.gate_hi - ld.gate_lo) as usize;
    if n_gates == 0 {
        return;
    }
    let (lo, hi) = (ld.col_off as usize, ld.col_off as usize + ld.threads);
    let outs = &scratch.outs()[lo..hi];
    let bases = &scratch.bases()[lo..hi];
    let publish_gates = |gates: Range<usize>| {
        let mut chunk = [DumpMsg::EMPTY; PUBLISH_CHUNK];
        let mut n = 0usize;
        for gi in gates {
            let sig = schedule.out_sig(ld.gate_lo as usize + gi);
            let mut sum = 0u64;
            for (w, &(ws, we)) in windows.iter().enumerate() {
                let tid = gi * nw + w;
                // relaxed-ok: the level's counts/bases settled before its
                // publish ticket was issued; the ticket's Release/Acquire
                // pair carries them here.
                let words = KernelOutput::unpack_words(outs[tid].load(Ordering::Relaxed));
                sum += u64::from(words);
                chunk[n] = DumpMsg {
                    signal: sig as u32,
                    // relaxed-ok: see above.
                    ptr: bases[tid].load(Ordering::Relaxed),
                    clip: we - ws,
                };
                n += 1;
                if n == PUBLISH_CHUNK {
                    ring.push_slice(&chunk);
                    n = 0;
                }
            }
            // relaxed-ok: commutative add; readers fence on the ticket's
            // completion (`PublishPipeline::fence`) before consuming sums.
            scratch.len_sum[sig].fetch_add(sum, Ordering::Relaxed);
        }
        ring.push_slice(&chunk[..n]);
    };
    if ld.threads >= PARALLEL_PUBLISH_MIN && workers > 1 {
        // Scale fan-out to the work: one worker per half-threshold of
        // messages, so a level just over the bar spawns 2 threads, not
        // the full complement (spawn/teardown is the dominant cost for
        // borderline levels).
        let workers = workers
            .min(MAX_PUBLISH_WORKERS)
            .min(ld.threads / (PARALLEL_PUBLISH_MIN / 2))
            .min(n_gates)
            .max(2);
        let per = n_gates.div_ceil(workers);
        let publish_gates = &publish_gates;
        crate::sync::thread::scope(|s| {
            let mut lo = 0usize;
            while lo < n_gates {
                let hi = (lo + per).min(n_gates);
                s.spawn(move |_| publish_gates(lo..hi));
                lo = hi;
            }
        })
        // panic-ok: scope join — re-raises a fan-out worker's panic.
        .expect("publish fan-out worker panicked");
    } else {
        publish_gates(0..n_gates);
    }
}

/// The group-batched base assigner: one segmented prefix-sum per fused
/// group, scanning the group's contiguous count slab with the arena carry
/// chained across level segments.
///
/// A fused group's levels stack their count columns into one slab
/// ([`LevelDesc::col_off`](crate::schedule::LevelDesc)), but the scan
/// cannot run over the whole slab at once — level `L + 1`'s counts exist
/// only after level `L`'s store phase — so the assigner advances one
/// segment per count-phase boundary, carrying the bump cursor. Each
/// segment fans out across host workers when wide enough
/// ([`assign_bases`]); OOM is detected per level and leaves the carry at
/// the last successful level, so error semantics and the resulting bump
/// are bit-identical to running [`assign_bases_serial`] per level (the
/// property test `grouped_assignment_matches_per_level_serial` pins this).
struct GroupAssigner {
    /// The carry: next free arena word after the segments scanned so far.
    bump: usize,
    capacity: usize,
    workers: usize,
}

impl GroupAssigner {
    /// Starts a group scan at arena cursor `bump`.
    fn new(bump: usize, capacity: usize, workers: usize) -> Self {
        GroupAssigner {
            bump,
            capacity,
            workers,
        }
    }

    /// Scans the next level segment of the slab, assigning its bases and
    /// advancing the carry; returns the words the segment allocated.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfMemory`] if the segment's outputs exceed the
    /// arena; the carry keeps its pre-segment value.
    fn advance(&mut self, outs: &[AtomicU64], bases: &[AtomicU32]) -> Result<u64> {
        let (new_bump, words) = assign_bases(outs, bases, self.bump, self.capacity, self.workers)?;
        self.bump = new_bump;
        Ok(words)
    }

    /// The carry after the segments scanned so far.
    fn bump(&self) -> usize {
        self.bump
    }

    /// Speculative counterpart of [`GroupAssigner::advance`]'s *first*
    /// half: reserves a predicted budget for every thread of `level`
    /// **before** its speculative pass runs, advancing the carry; returns
    /// the words reserved. See [`assign_budgets`].
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfMemory`]; the carry keeps its pre-level value.
    fn advance_budgets(
        &mut self,
        schedule: &LevelSchedule,
        scratch: &BatchScratch,
        level: usize,
        n_signals: usize,
    ) -> Result<u64> {
        let (new_bump, words) = assign_budgets(
            schedule,
            scratch,
            level,
            n_signals,
            self.bump,
            self.capacity,
        )?;
        self.bump = new_bump;
        Ok(words)
    }

    /// Speculative counterpart of [`GroupAssigner::advance`]'s *second*
    /// half: scans `level`'s true packed outputs after its speculative
    /// pass, re-allocating exact space for overflowed threads and feeding
    /// the extent predictor, advancing the carry; returns the words the
    /// overflow re-allocations added. See [`scan_speculative_level`].
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfMemory`]; the carry keeps its pre-scan value.
    fn advance_scan(
        &mut self,
        schedule: &LevelSchedule,
        scratch: &BatchScratch,
        level: usize,
        overflow_cols: &mut Vec<usize>,
        tally: &mut SpecTally,
    ) -> Result<u64> {
        let (new_bump, words) = scan_speculative_level(
            schedule,
            scratch,
            level,
            self.bump,
            self.capacity,
            overflow_cols,
            tally,
        )?;
        self.bump = new_bump;
        Ok(words)
    }
}

/// Running speculation telemetry for one window batch: the raw counters
/// behind `AppPhaseProfile::{speculative_hit_rate, overflow_repairs,
/// predicted_waste_words}` and the Auto fallback latch.
#[derive(Debug, Default)]
struct SpecTally {
    /// Speculative store threads executed.
    threads: u64,
    /// Threads whose reservation overflowed (each re-run by a repair).
    overflows: u64,
    /// Arena words reserved beyond what the stored waveforms needed:
    /// prediction slack on hits plus whole abandoned reservations on
    /// overflows.
    waste_words: u64,
}

/// Speculative hit rate from the accumulated counters:
/// `(threads − overflows) / threads`, `0.0` for a run that never
/// speculated.
fn spec_hit_rate(threads: u64, overflows: u64) -> f64 {
    if threads == 0 {
        0.0
    } else {
        (threads - overflows) as f64 / threads as f64
    }
}

/// Assigns every thread of `level` a speculative output reservation before
/// its single store pass runs: the plan's per-gate extent history where the
/// gate has one ([`ExtentPredictor::predict`]), else the sound static bound
/// — marker + initial entry + EOW + one edge per stored input word
/// (`4 + Σ published input lengths`; a gate's output toggles at most once
/// per input edge, so a first-touch gate can never overflow). Budgets are
/// even-aligned like every arena allocation; bases and caps land in the
/// level's scratch slab for the kernel threads and the post-level scan.
///
/// # Errors
///
/// [`CoreError::OutOfMemory`] if the reservations exceed the arena (the
/// caller segments and retries exactly like a count-pass OOM).
fn assign_budgets(
    schedule: &LevelSchedule,
    scratch: &BatchScratch,
    level: usize,
    n_signals: usize,
    bump: usize,
    capacity: usize,
) -> Result<(usize, u64)> {
    let ld = schedule.level(level);
    let nw = schedule.nw;
    let predictor = schedule.predictor();
    // relaxed-ok: boundary reset — the launch join / phase gate that
    // follows this assignment orders it against the kernel threads'
    // overflow-cursor bumps.
    scratch.ovf_len.store(0, Ordering::Relaxed);
    let mut cursor = bump;
    let mut col = ld.col_off as usize;
    // One predictor read per gate, shared by its windows — the per-thread
    // loop below then only branches on the cached value.
    for gi in 0..ld.threads / nw {
        let slot = ld.gate_lo as usize + gi;
        let predicted = predictor.predict(schedule.gate(slot));
        for w in 0..nw {
            let words = match predicted {
                Some(words) => words as usize,
                None => {
                    let edges: usize = schedule
                        .pins_of(slot)
                        .iter()
                        .map(|&sig| {
                            // relaxed-ok: input lengths were published by
                            // lower levels behind the launch join / phase
                            // gate that precedes this boundary (same
                            // ordering as the kernel's own input reads).
                            scratch.lens[w * n_signals + sig as usize].load(Ordering::Relaxed)
                                as usize
                        })
                        .sum();
                    4 + edges
                }
            };
            let words_even = words + (words & 1);
            if cursor + words_even > capacity {
                return Err(CoreError::OutOfMemory {
                    requested: cursor + words_even,
                    capacity,
                });
            }
            // relaxed-ok: runs at a launch/phase boundary — the join/gate
            // orders these writes against the speculative pass that reads
            // them.
            scratch.bases()[col].store(cursor as u32, Ordering::Relaxed);
            // relaxed-ok: see above.
            scratch.caps()[col].store(words_even as u32, Ordering::Relaxed);
            cursor += words_even;
            col += 1;
        }
    }
    Ok((cursor, (cursor - bump) as u64))
}

/// Post-level overflow scan of a speculative pass. The kernel threads did
/// the per-column work themselves — feeding the extent predictor,
/// accumulating hit slack into [`BatchScratch::spec_waste`], and recording
/// overflowed columns through the [`BatchScratch::ovf_len`] cursor — so
/// this scan is O(overflows), not O(columns): on the common all-hit level
/// it only bumps the thread tally. For each recorded overflow it
/// re-allocates exact even-aligned space — appending `col` to
/// `overflow_cols` so the classic path can launch a narrow repair — and
/// counts the whole abandoned reservation as waste. Recorded columns are
/// sorted first: the recording order depends on thread interleaving, and
/// repairs must allocate in column order for the arena layout to stay
/// deterministic.
///
/// # Errors
///
/// [`CoreError::OutOfMemory`] if an overflow re-allocation exceeds the
/// arena.
#[allow(clippy::too_many_arguments)]
fn scan_speculative_level(
    schedule: &LevelSchedule,
    scratch: &BatchScratch,
    level: usize,
    bump: usize,
    capacity: usize,
    overflow_cols: &mut Vec<usize>,
    tally: &mut SpecTally,
) -> Result<(usize, u64)> {
    let ld = schedule.level(level);
    let mut cursor = bump;
    overflow_cols.clear();
    // relaxed-ok: the cursor and its slots were written by the kernel
    // threads before the launch join / phase gate that precedes this scan.
    let n = scratch.ovf_len.load(Ordering::Relaxed);
    if n != 0 {
        let mut cols: Vec<usize> = scratch.ovf[..n]
            .iter()
            // relaxed-ok: see above.
            .map(|s| s.load(Ordering::Relaxed) as usize)
            .collect();
        cols.sort_unstable();
        for col in cols {
            // relaxed-ok: stored by the overflowing thread before the
            // join/gate; see above.
            let packed = scratch.outs()[col].load(Ordering::Relaxed);
            // relaxed-ok: written by `assign_budgets` at the boundary
            // before the pass.
            let cap = scratch.caps()[col].load(Ordering::Relaxed);
            let words_even = KernelOutput::unpack_words_even(packed);
            tally.overflows += 1;
            // The whole reservation is abandoned: the exact waveform gets
            // fresh space so hits' already-published pointers stay put.
            tally.waste_words += u64::from(cap);
            if cursor + words_even > capacity {
                return Err(CoreError::OutOfMemory {
                    requested: cursor + words_even,
                    capacity,
                });
            }
            // relaxed-ok: the repair pass reads this base behind the next
            // launch join / phase gate.
            scratch.bases()[col].store(cursor as u32, Ordering::Relaxed);
            cursor += words_even;
            overflow_cols.push(col);
        }
    }
    tally.threads += ld.threads as u64;
    Ok((cursor, (cursor - bump) as u64))
}

/// Serial prefix-sum of the count-pass outputs: assigns every thread its
/// even-aligned arena base.
///
/// # Errors
///
/// [`CoreError::OutOfMemory`] if the level's outputs exceed the arena.
fn assign_bases_serial(
    outs: &[AtomicU64],
    bases: &[AtomicU32],
    bump: usize,
    capacity: usize,
) -> Result<(usize, u64)> {
    let mut cursor = bump;
    for (out, base) in outs.iter().zip(bases) {
        // relaxed-ok: runs at the count/store boundary (engine thread or
        // phase leader) — the launch join / phase gate orders it against
        // the count pass before and the store pass after.
        let words_even = KernelOutput::unpack_words_even(out.load(Ordering::Relaxed));
        if cursor + words_even > capacity {
            return Err(CoreError::OutOfMemory {
                requested: cursor + words_even,
                capacity,
            });
        }
        // relaxed-ok: see above.
        base.store(cursor as u32, Ordering::Relaxed);
        cursor += words_even;
    }
    Ok((cursor, (cursor - bump) as u64))
}

/// Prefix-sum of the count-pass outputs, chunked across host workers for
/// wide levels: per-chunk sums in parallel, a serial scan over the chunk
/// totals (at most [`MAX_PREFIX_WORKERS`] entries, on the stack), then
/// parallel base assignment.
///
/// # Errors
///
/// As [`assign_bases_serial`].
fn assign_bases(
    outs: &[AtomicU64],
    bases: &[AtomicU32],
    bump: usize,
    capacity: usize,
    workers: usize,
) -> Result<(usize, u64)> {
    assign_bases_bounded(outs, bases, bump, capacity, workers, PARALLEL_PREFIX_MIN)
}

/// [`assign_bases`] with an explicit parallel threshold: the production
/// entry point pins it to [`PARALLEL_PREFIX_MIN`]; the model tests lower it
/// so the fan-out path is explorable at model scale (a few entries).
fn assign_bases_bounded(
    outs: &[AtomicU64],
    bases: &[AtomicU32],
    bump: usize,
    capacity: usize,
    workers: usize,
    parallel_min: usize,
) -> Result<(usize, u64)> {
    let threads = outs.len();
    if threads < parallel_min || workers <= 1 {
        return assign_bases_serial(outs, bases, bump, capacity);
    }
    let workers = workers.min(MAX_PREFIX_WORKERS).min(threads);
    let chunk = threads.div_ceil(workers);

    let mut sums = [0u64; MAX_PREFIX_WORKERS];
    crate::sync::thread::scope(|s| {
        for (outs_chunk, sum) in outs.chunks(chunk).zip(sums.iter_mut()) {
            s.spawn(move |_| {
                *sum = outs_chunk
                    .iter()
                    // relaxed-ok: the scope spawn/join brackets this read
                    // between the count pass and the store pass.
                    .map(|o| KernelOutput::unpack_words_even(o.load(Ordering::Relaxed)) as u64)
                    .sum();
            });
        }
    })
    // panic-ok: scope join — re-raises a prefix-sum worker's panic.
    .expect("prefix-sum worker panicked");

    let total: u64 = sums.iter().sum();
    if bump as u64 + total > capacity as u64 {
        // Out of memory: re-run the serial scan so the error's requested
        // value (the first overflowing prefix) and the partially assigned
        // bases are bit-identical to the serial path — the parallel and
        // serial assignments must be indistinguishable to callers, OOM
        // included. The extra O(n) walk only happens on the error path.
        return assign_bases_serial(outs, bases, bump, capacity);
    }

    // Exclusive scan over chunk totals, then parallel assignment.
    let mut offsets = [0u64; MAX_PREFIX_WORKERS];
    let mut running = bump as u64;
    for (o, s) in offsets.iter_mut().zip(sums) {
        *o = running;
        running += s;
    }
    crate::sync::thread::scope(|s| {
        for ((outs_chunk, bases_chunk), &start) in outs
            .chunks(chunk)
            .zip(bases.chunks(chunk))
            .zip(offsets.iter())
        {
            s.spawn(move |_| {
                let mut cursor = start;
                for (o, b) in outs_chunk.iter().zip(bases_chunk) {
                    // relaxed-ok: scope spawn/join brackets these writes
                    // between the count pass and the store pass.
                    b.store(cursor as u32, Ordering::Relaxed);
                    // relaxed-ok: see above.
                    cursor += KernelOutput::unpack_words_even(o.load(Ordering::Relaxed)) as u64;
                }
            });
        }
    })
    // panic-ok: scope join — re-raises a prefix-assign worker's panic.
    .expect("prefix-assign worker panicked");

    Ok((bump + total as usize, total))
}

/// Precomputes the collapsed average (rise, fall) delay for every pin slot
/// (Table 7 "No Full SDF" mode).
fn compute_avg_delays(graph: &CircuitGraph) -> Vec<(i32, i32)> {
    let mut out = Vec::new();
    for g in 0..graph.n_gates() {
        let n = graph.gate_fanin(g).len();
        let (fb_r, fb_f) = graph.fallback_delay(g);
        for pin in 0..n {
            let lut = graph.delay_lut(g, pin);
            let ncols = lut.len() / 4;
            let mut avg = [(0i64, 0i64); 2]; // (sum, n) per output edge
            for row in 0..4usize {
                for c in 0..ncols {
                    let d = lut[row * ncols + c];
                    if d != NO_ARC {
                        let e = &mut avg[row % 2];
                        e.0 += i64::from(d);
                        e.1 += 1;
                    }
                }
            }
            let rise = if avg[0].1 > 0 {
                (avg[0].0 / avg[0].1) as i32
            } else {
                fb_r
            };
            let fall = if avg[1].1 > 0 {
                (avg[1].0 / avg[1].1) as i32
            } else {
                fb_f
            };
            out.push((rise, fall));
        }
    }
    out
}

/// Scans a stored waveform computing `(toggle count, time at 0, time at 1)`
/// clipped to `[0, clip)` — the SAIF record of one window, read directly
/// from device memory without materialising the waveform.
fn saif_scan(mem: &DeviceMemory, ptr: u32, clip: SimTime) -> (u64, i64, i64) {
    let mut idx = ptr as usize;
    let mut first = mem.load(idx);
    if first == INIT_ONE_MARKER {
        idx += 1;
        first = mem.load(idx);
    }
    debug_assert_eq!(first, 0);
    let mut val = idx % 2 == 1;
    let mut tc = 0u64;
    let mut t0 = 0i64;
    let mut t1 = 0i64;
    let mut prev = 0i64;
    let clip64 = i64::from(clip);
    loop {
        idx += 1;
        let t = mem.load(idx);
        if t == EOW || i64::from(t) >= clip64 {
            break;
        }
        let span = i64::from(t) - prev;
        if val {
            t1 += span;
        } else {
            t0 += span;
        }
        prev = i64::from(t);
        val = idx % 2 == 1;
        tc += 1;
    }
    let tail = clip64 - prev;
    if tail > 0 {
        if val {
            t1 += tail;
        } else {
            t0 += tail;
        }
    }
    (tc, t0, t1)
}

/// Runs the simulation across `gpus`, sharding windows evenly — the
/// paper's cycle-parallel multi-GPU distribution (§5, Fig. 6).
impl Session {
    /// Runs the simulation across `gpus`: cycle parallelism is set to
    /// `cycle_parallelism × n` and every device independently simulates
    /// its share of windows (no inter-device communication — the known
    /// sequential-element waveforms make windows fully independent, so
    /// kernel time follows `t = t₁/n + ovr`).
    ///
    /// The launch plan is built **once** per distinct shard window count —
    /// with even shards, exactly once for the whole run — and shared
    /// read-only across the devices, instead of each shard re-walking the
    /// graph.
    ///
    /// The merged result reports: modeled kernel time = slowest device
    /// (they run concurrently), wall time = measured, SAIF/toggles = exact
    /// sums. Without waveform spill, extraction is not supported on
    /// multi-GPU results; see [`Session::run_multi_gpu_with`].
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; additionally propagates the first per-device
    /// error.
    pub fn run_multi_gpu(
        &self,
        gpus: &MultiGpu,
        stimuli: &[Waveform],
        duration: SimTime,
    ) -> Result<SimResult> {
        self.run_multi_gpu_with(gpus, stimuli, duration, &RunOptions::default())
    }

    /// [`Session::run_multi_gpu`] with explicit [`RunOptions`].
    ///
    /// [`RunOptions::spill_waveforms`] routes every shard's finished
    /// batch through the host spill sink — shards cover contiguous window
    /// ranges, so draining them in device order merges the windows in
    /// time order — making [`SimResult::waveform`] work on multi-GPU
    /// results exactly as on segmented single-device runs.
    /// [`RunOptions::fuse_threshold`] overrides the launch-fusion
    /// threshold; [`RunOptions::segment_windows`] is ignored (sharding
    /// already fixes each device's window count).
    ///
    /// # Errors
    ///
    /// As [`Session::run_multi_gpu`].
    pub fn run_multi_gpu_with(
        &self,
        gpus: &MultiGpu,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
    ) -> Result<SimResult> {
        self.run_multi_gpu_inner(gpus, stimuli, duration, opts, None)
    }

    /// Streaming multi-GPU run: every shard's finished waveforms are
    /// drained through `sink` in device order — shards cover contiguous
    /// window ranges, so the sink observes windows in ascending
    /// absolute-time order, exactly like a segmented single-device
    /// [`Session::run_streaming`].
    ///
    /// # Errors
    ///
    /// As [`Session::run_multi_gpu`].
    pub fn run_multi_gpu_streaming(
        &self,
        gpus: &MultiGpu,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        sink: &mut dyn WaveformSink,
    ) -> Result<SimResult> {
        self.run_multi_gpu_inner(gpus, stimuli, duration, opts, Some(sink))
    }

    /// The multi-GPU engine: shard, execute concurrently, merge in device
    /// (= time) order, routing drained waveforms through the spill and/or
    /// a caller sink.
    fn run_multi_gpu_inner(
        &self,
        gpus: &MultiGpu,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        mut user_sink: Option<&mut dyn WaveformSink>,
    ) -> Result<SimResult> {
        let t_app = Instant::now();
        let n_pis = self.graph.primary_inputs().len();
        if stimuli.len() != n_pis {
            return Err(CoreError::StimulusMismatch {
                expected: n_pis,
                got: stimuli.len(),
            });
        }
        let slots = self.config.cycle_parallelism * gpus.len();
        let windows = self.make_windows(duration, slots);
        let shards = gatspi_gpu::shard_slots(windows.len(), gpus.len());

        let t0 = Instant::now();
        // Host-side restructuring is shared across devices; use the first
        // device's worker pool as the host thread budget.
        let win_stims = self.restructure(stimuli, &windows, gpus.device(0).workers());
        let restructure_seconds = t0.elapsed().as_secs_f64();

        // One plan per distinct shard size, resolved through the session
        // cache *before* the devices fan out (deterministic build count,
        // shared read-only across the fleet — failover re-execution hits
        // the same cache entries).
        let fuse_threshold = opts.fuse_threshold.unwrap_or(self.config.fuse_threshold);
        for &(_, count) in &shards {
            if count > 0 {
                let _ = self.plan(count, fuse_threshold);
            }
        }

        // Reset every device's transfer counters up front — including
        // devices whose shard is empty this run, whose stale counters
        // from a previous run on the same `MultiGpu` would otherwise
        // leak into this run's h2d accounting.
        for i in 0..gpus.len() {
            gpus.device(i).memory().reset_counters();
        }

        let n_signals = self.graph.n_signals();

        // Run each shard on its device concurrently. Each shard thread
        // catches and retries its own device's faults (bounded by the
        // session's `RetryPolicy`), so a fault never crosses a scope join
        // as a raw panic: the outcome is either a finished batch or the
        // structured error that survived the retries. The same closure
        // re-executes redistributed sub-shards during failover rounds.
        let telemetry = RetryTelemetry::new();
        let run_shard = |device_index: usize, start: usize, count: usize| -> Result<WindowBatch> {
            let plan = self.plan(count, fuse_threshold);
            let device = gpus.device(device_index);
            let scratch = self.acquire_scratch(&plan);
            let mut first_attempt = true;
            let r = self.with_retry(device_index, &telemetry, || {
                if !first_attempt {
                    // A faulted attempt abandoned the batch mid-flight;
                    // scrub its partial writes before re-running.
                    scratch.reset(count * n_signals);
                }
                first_attempt = false;
                self.run_window_batch(
                    device,
                    &plan,
                    &scratch,
                    &windows[start..start + count],
                    BatchStimulus::Full(&win_stims[start..start + count]),
                )
            });
            self.release_scratch(scratch);
            r
        };
        let mut outcomes: Vec<Option<Result<WindowBatch>>> = Vec::new();
        outcomes.resize_with(gpus.len(), || None);
        crate::sync::thread::scope(|s| {
            for (slot, (i, &(start, count))) in outcomes.iter_mut().zip(shards.iter().enumerate()) {
                let run_shard = &run_shard;
                s.spawn(move |_| {
                    *slot = (count > 0).then(|| run_shard(i, start, count));
                });
            }
        })
        // panic-ok: scope join — shard panics are caught per shard; only
        // a panic outside every shard boundary reaches this join.
        .expect("multi-gpu scope panicked");

        // Merge — and drain every shard's batch through the active sinks
        // in device order: shards cover contiguous window ranges, so this
        // merges the windows in time order. A shard whose device failed
        // permanently (or exhausted its retries) is queued for failover;
        // from the first failure on, delivery is diverted away from the
        // caller's streaming sink into a reorder buffer (failover shards
        // finish out of window order), and the buffered tail is replayed
        // to the caller in order at the end — the stream it observes stays
        // identical to a fault-free run's.
        let mut tc = vec![0u64; n_signals];
        let mut t0_acc = vec![0i64; n_signals];
        let mut t1_acc = vec![0i64; n_signals];
        let mut profile = KernelProfile::empty("multi-resim");
        let mut slowest = 0.0f64;
        let mut launches = 0u64;
        let mut fused_launches = 0u64;
        let mut dump_stall = 0.0f64;
        let mut drain_seconds = 0.0f64;
        let mut d2h_batches = 0u64;
        let mut spec_threads = 0u64;
        let mut spec_overflows = 0u64;
        let mut spec_waste = 0u64;
        let mut spill = opts.spill_waveforms.then(|| SpillSink::new(n_signals));
        let mut h2d_bytes = self.graph.device_bytes() * gpus.len() as u64;
        let mut devices_used = 0usize;
        let mut used = vec![false; gpus.len()];
        let mut dead = vec![false; gpus.len()];
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut fatal: Option<CoreError> = None;
        let mut degraded = false;
        // Windows [0, delivered_upto) were streamed to the caller's sink
        // before the first failure; the degraded-mode replay resumes there.
        let mut delivered_upto = 0usize;
        // Reorder buffer for degraded mode when the run has no spill of
        // its own (the spill doubles as the buffer otherwise — it accepts
        // windows in any order).
        let mut reorder: Option<SpillSink> = None;
        for (i, o) in outcomes.into_iter().enumerate() {
            let Some(o) = o else { continue };
            let (start, count) = shards[i];
            let batch = match o {
                Ok(batch) => batch,
                Err(e @ CoreError::DeviceFault { .. }) => {
                    dead[i] = true;
                    degraded = true;
                    fatal = Some(e);
                    pending.push((start, count));
                    continue;
                }
                Err(e) => return Err(e),
            };
            let deliver_direct = !degraded && user_sink.is_some();
            let mut sinks: Vec<&mut dyn WaveformSink> = Vec::new();
            if degraded {
                if let Some(sp) = spill.as_mut() {
                    sinks.push(sp);
                } else if user_sink.is_some() {
                    sinks.push(reorder.get_or_insert_with(|| SpillSink::new(n_signals)));
                }
            } else {
                if let Some(sp) = spill.as_mut() {
                    sinks.push(sp);
                }
                if let Some(us) = user_sink.as_mut() {
                    sinks.push(&mut **us);
                }
            }
            let t_drain = Instant::now();
            match self.drain_shard(
                gpus.device(i),
                i,
                &batch,
                start,
                &win_stims[start..start + count],
                &mut sinks,
                &telemetry,
            ) {
                Ok(drained) => {
                    drain_seconds += t_drain.elapsed().as_secs_f64();
                    d2h_batches += drained;
                    for s in 0..n_signals {
                        tc[s] += batch.tc[s];
                        t0_acc[s] += batch.t0[s];
                        t1_acc[s] += batch.t1[s];
                    }
                    slowest = slowest.max(batch.kernel_profile.modeled_seconds);
                    profile.accumulate(&batch.kernel_profile);
                    launches += batch.launches;
                    fused_launches += batch.fused_launches;
                    dump_stall += batch.dump_stall_seconds;
                    spec_threads += batch.spec_threads;
                    spec_overflows += batch.spec_overflows;
                    spec_waste += batch.spec_waste_words;
                    if !used[i] {
                        used[i] = true;
                        devices_used += 1;
                    }
                    if deliver_direct {
                        delivered_upto = start + count;
                    }
                }
                Err(e @ CoreError::DeviceFault { .. }) => {
                    // The batch's waveforms are stranded on the dead
                    // device (nothing was accumulated or delivered);
                    // re-run the whole shard elsewhere.
                    dead[i] = true;
                    degraded = true;
                    fatal = Some(e);
                    pending.push((start, count));
                }
                Err(e) => return Err(e),
            }
        }

        // Failover rounds: redistribute every lost shard across the
        // survivors against the already-shared schedule. Each round either
        // completes its sub-shards or kills at least one more device, so
        // the loop terminates; with no survivors left, the run fails with
        // the recorded fault.
        while let Some((lost_start, lost_count)) = pending.pop() {
            let survivors: Vec<usize> = (0..gpus.len()).filter(|&d| !dead[d]).collect();
            if survivors.is_empty() {
                // panic-ok: invariant — a device is marked dead only
                // after its fault is recorded in `fatal`.
                return Err(fatal.take().expect("a failover implies a recorded fault"));
            }
            telemetry.failover();
            // One sub-shard per survivor at most: a batch must be drained
            // before its device's arena can host another, so each device
            // takes a single range per round, claimed through the queue.
            let sub: Vec<(usize, usize)> = gatspi_gpu::shard_slots(lost_count, survivors.len())
                .into_iter()
                .filter(|&(_, c)| c > 0)
                .map(|(s, c)| (lost_start + s, c))
                .collect();
            let queue = ShardQueue::new(sub);
            let mut round: Vec<(usize, usize, usize, Result<WindowBatch>)> = Vec::new();
            crate::sync::thread::scope(|s| {
                let mut handles = Vec::with_capacity(survivors.len());
                for &d in &survivors {
                    let queue = &queue;
                    let run_shard = &run_shard;
                    handles.push(s.spawn(move |_| {
                        queue
                            .claim()
                            .map(|(start, count)| (d, start, count, run_shard(d, start, count)))
                    }));
                }
                // Explicit joins: a panic that somehow escapes a shard
                // thread (a bug — run_shard catches faults) must surface
                // with its payload, not a generic scope message.
                for h in handles {
                    match h.join() {
                        Ok(Some(item)) => round.push(item),
                        Ok(None) => {}
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            })
            // panic-ok: scope join — re-raises a retry worker's panic.
            .expect("failover scope panicked");
            for (d, start, count, outcome) in round {
                let batch = match outcome {
                    Ok(batch) => batch,
                    Err(e @ CoreError::DeviceFault { .. }) => {
                        dead[d] = true;
                        fatal = Some(e);
                        pending.push((start, count));
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                let mut sinks: Vec<&mut dyn WaveformSink> = Vec::new();
                if let Some(sp) = spill.as_mut() {
                    sinks.push(sp);
                } else if user_sink.is_some() {
                    sinks.push(reorder.get_or_insert_with(|| SpillSink::new(n_signals)));
                }
                let t_drain = Instant::now();
                match self.drain_shard(
                    gpus.device(d),
                    d,
                    &batch,
                    start,
                    &win_stims[start..start + count],
                    &mut sinks,
                    &telemetry,
                ) {
                    Ok(drained) => {
                        drain_seconds += t_drain.elapsed().as_secs_f64();
                        d2h_batches += drained;
                        for s in 0..n_signals {
                            tc[s] += batch.tc[s];
                            t0_acc[s] += batch.t0[s];
                            t1_acc[s] += batch.t1[s];
                        }
                        slowest = slowest.max(batch.kernel_profile.modeled_seconds);
                        profile.accumulate(&batch.kernel_profile);
                        launches += batch.launches;
                        fused_launches += batch.fused_launches;
                        dump_stall += batch.dump_stall_seconds;
                        spec_threads += batch.spec_threads;
                        spec_overflows += batch.spec_overflows;
                        spec_waste += batch.spec_waste_words;
                        if !used[d] {
                            used[d] = true;
                            devices_used += 1;
                        }
                    }
                    Err(e @ CoreError::DeviceFault { .. }) => {
                        dead[d] = true;
                        fatal = Some(e);
                        pending.push((start, count));
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        // Degraded-mode replay: hand the buffered tail to the caller's
        // sink in ascending (window, signal) order — the exact stream a
        // fault-free run would have produced from `delivered_upto` on.
        if degraded {
            if let Some(us) = user_sink.as_mut() {
                if let Some(buf) = spill.as_mut().or(reorder.as_mut()) {
                    // Seal first: buffered words are readable only from
                    // frozen chunks (re-sealing at the end stays a no-op).
                    buf.seal();
                    self.replay_spill(buf, &shards, delivered_upto, &mut **us);
                }
            }
        }
        profile.modeled_seconds = slowest;
        let mut d2h_bytes = 0u64;
        for i in 0..gpus.len() {
            h2d_bytes += gpus.device(i).memory().h2d_bytes();
            d2h_bytes += gpus.device(i).memory().d2h_bytes();
        }

        let (saif, toggle_counts) = self.assemble_saif(stimuli, duration, &tc, &t0_acc, &t1_acc);
        let spec = gpus.device(0).spec();
        let sync_launch = (launches as f64 / devices_used.max(1) as f64) * spec.launch_overhead;
        let app_profile = AppPhaseProfile {
            h2d_seconds: h2d_bytes as f64 / (spec.pcie_bw * devices_used.max(1) as f64),
            // Waveform readback happens only for spilled multi-GPU runs;
            // the drain walks the devices one after another, so the
            // modeled transfer does not divide by the device count.
            readback_seconds: d2h_bytes as f64 / spec.pcie_bw,
            sync_launch_seconds: sync_launch,
            kernel_seconds: (slowest - sync_launch).max(0.0),
            restructure_seconds,
            dump_seconds: 0.0,
            dump_stall_seconds: dump_stall,
            drain_seconds,
            d2h_batches,
            launches,
            fused_launches,
            h2d_bytes,
            d2h_bytes,
            speculative_hit_rate: spec_hit_rate(spec_threads, spec_overflows),
            overflow_repairs: spec_overflows,
            predicted_waste_words: spec_waste,
            faults_injected: telemetry.faults(),
            segment_retries: telemetry.retries(),
            failovers: telemetry.failovers(),
            backoff_seconds: telemetry.backoff_seconds(),
            oom_retries: telemetry.oom_retries(),
        };
        if let Some(sp) = spill.as_mut() {
            sp.seal();
        }
        Ok(SimResult {
            saif,
            kernel_profile: profile,
            app_profile,
            wall_seconds: t_app.elapsed().as_secs_f64(),
            toggle_counts,
            duration,
            segments: gpus.len(),
            extraction: None,
            spilled: spill,
        })
    }
}

/// Streaming file-format convenience entry points: run and write VCD/SAIF
/// incrementally, with memory bounded per window — the paper's Fig. 2
/// deliverables without ever materialising all waveforms.
impl Session {
    /// Every signal's name, indexed by signal id (the format sinks' name
    /// table).
    fn signal_names(&self) -> Vec<&str> {
        (0..self.graph.n_signals())
            .map(|s| self.graph.signal_name(gatspi_graph::SignalId(s as u32)))
            .collect()
    }

    /// Runs and streams every signal's waveform into `out` as VCD,
    /// window by window — works for segmented runs, where the whole-run
    /// waveforms never coexist in memory. Returns the result and the
    /// writer (pass a `BufWriter<File>` for file output, or `Vec<u8>` for
    /// in-memory).
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; writer failures surface as [`CoreError::Io`].
    pub fn run_to_vcd<W: std::io::Write>(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        out: W,
    ) -> Result<(SimResult, W)> {
        let names = self.signal_names();
        let mut sink = VcdSink::new(out, self.graph.name(), &names)?;
        let result = self.run_streaming(stimuli, duration, opts, &mut sink)?;
        Ok((result, sink.finish()?))
    }

    /// Runs and folds the SAIF document incrementally from the streamed
    /// waveforms (per-window deltas, O(nets) memory). The returned
    /// document equals [`SimResult::saif`] — this entry point exists for
    /// flows that want the SAIF produced by the *output* path (e.g. to
    /// cross-check the kernel-side accumulation) or extended with sink
    /// post-processing.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_to_saif(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
    ) -> Result<(SimResult, SaifDocument)> {
        let names: Vec<String> = self.signal_names().iter().map(|s| s.to_string()).collect();
        let mut sink = SaifSink::new(self.graph.name(), names);
        let result = self.run_streaming(stimuli, duration, opts, &mut sink)?;
        Ok((result, sink.finish(duration)))
    }

    /// [`Session::run_to_vcd`] across multiple devices (via
    /// [`Session::run_multi_gpu_streaming`]): shards drain in time order,
    /// so the VCD is identical to a single-device run's.
    ///
    /// # Errors
    ///
    /// As [`Session::run_multi_gpu`]; writer failures surface as
    /// [`CoreError::Io`].
    pub fn run_multi_gpu_to_vcd<W: std::io::Write>(
        &self,
        gpus: &MultiGpu,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
        out: W,
    ) -> Result<(SimResult, W)> {
        let names = self.signal_names();
        let mut sink = VcdSink::new(out, self.graph.name(), &names)?;
        let result = self.run_multi_gpu_streaming(gpus, stimuli, duration, opts, &mut sink)?;
        Ok((result, sink.finish()?))
    }

    /// [`Session::run_to_saif`] across multiple devices.
    ///
    /// # Errors
    ///
    /// As [`Session::run_multi_gpu`].
    pub fn run_multi_gpu_to_saif(
        &self,
        gpus: &MultiGpu,
        stimuli: &[Waveform],
        duration: SimTime,
        opts: &RunOptions,
    ) -> Result<(SimResult, SaifDocument)> {
        let names: Vec<String> = self.signal_names().iter().map(|s| s.to_string()).collect();
        let mut sink = SaifSink::new(self.graph.name(), names);
        let result = self.run_multi_gpu_streaming(gpus, stimuli, duration, opts, &mut sink)?;
        Ok((result, sink.finish(duration)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    fn inv_chain(n: usize) -> Arc<CircuitGraph> {
        let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
        let mut prev = b.add_input("a").unwrap();
        for i in 0..n {
            let net = b.add_net(&format!("n{i}")).unwrap();
            b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
            prev = net;
        }
        b.mark_output(prev);
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    /// Segment-boundary panic classification: typed device-fault payloads
    /// and dead-sink panics surface as structured errors; anything else is
    /// an isolated worker fault — never a process abort.
    #[test]
    fn segment_boundary_panics_classify_by_payload() {
        let e = panic_to_error(
            3,
            Box::new(gatspi_gpu::DeviceFaultPanic {
                device: 3,
                kind: gatspi_gpu::FaultKind::Launch,
                retryable: true,
            }),
        );
        assert!(matches!(
            e,
            CoreError::DeviceFault {
                device: 3,
                kind: gatspi_gpu::FaultKind::Launch,
                retryable: true
            }
        ));
        let e = panic_to_error(
            0,
            Box::new(crate::ring::SinkClosedPanic {
                detail: "SAIF scan died".into(),
            }),
        );
        match e {
            CoreError::SinkClosed { detail } => assert!(detail.contains("SAIF scan died")),
            other => panic!("expected SinkClosed, got {other:?}"),
        }
        let e = panic_to_error(1, Box::new("boom".to_string()));
        assert!(matches!(
            e,
            CoreError::DeviceFault {
                device: 1,
                kind: gatspi_gpu::FaultKind::Worker,
                retryable: false
            }
        ));
    }

    /// `with_retry` converts a dead-sink panic from inside an attempt into
    /// the structured [`CoreError::SinkClosed`] — without consuming retry
    /// budget — and the session stays fully usable afterwards.
    #[test]
    fn with_retry_surfaces_sink_closed_and_stays_usable() {
        let sim = Session::new(inv_chain(2), SimConfig::small());
        let telemetry = RetryTelemetry::new();
        let err = sim
            .with_retry(0, &telemetry, || -> Result<()> {
                std::panic::panic_any(crate::ring::SinkClosedPanic {
                    detail: "consumer gone".into(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::SinkClosed { .. }));
        assert_eq!(telemetry.retries(), 0, "a closed sink is not retryable");
        assert_eq!(telemetry.faults(), 0, "a closed sink is not a device fault");
        let stim = vec![Waveform::from_toggles(false, &[5, 11])];
        sim.run(&stim, 40).unwrap();
    }

    #[test]
    fn windows_cover_duration_exactly() {
        let sim = Session::new(inv_chain(1), SimConfig::small().with_window_align(10));
        let ws = sim.make_windows(95, 4);
        assert_eq!(ws.first().unwrap().0, 0);
        assert_eq!(ws.last().unwrap().1, 95);
        for pair in ws.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "contiguous windows");
        }
        // Aligned boundaries except the final clip.
        for &(s, _) in &ws {
            assert_eq!(s % 10, 0);
        }
    }

    #[test]
    fn windows_align_and_clip_edge_cases() {
        let sim = Session::new(inv_chain(1), SimConfig::small().with_window_align(100));
        // Duration shorter than one alignment unit: a single clipped window.
        assert_eq!(sim.make_windows(30, 4), vec![(0, 30)]);
        // Duration exactly one unit.
        assert_eq!(sim.make_windows(100, 4), vec![(0, 100)]);
        // Non-multiple duration: aligned starts, final window clipped.
        let ws = sim.make_windows(250, 2);
        assert_eq!(ws, vec![(0, 200), (200, 250)]);
        // More slots than alignment units: one window per unit, no empties.
        let ws = sim.make_windows(300, 50);
        assert_eq!(ws, vec![(0, 100), (100, 200), (200, 300)]);
        assert!(ws.iter().all(|&(s, e)| s < e), "no empty windows");
    }

    #[test]
    fn windows_degenerate_durations() {
        let sim = Session::new(inv_chain(1), SimConfig::small());
        // Zero (and anything below one tick) clamps to a single minimal
        // window rather than returning an empty cover.
        assert_eq!(sim.make_windows(0, 8), vec![(0, 1)]);
        assert_eq!(sim.make_windows(1, 8), vec![(0, 1)]);
        // Zero slots behaves as one slot.
        assert_eq!(sim.make_windows(500, 0), vec![(0, 500)]);
    }

    #[test]
    fn single_window_when_parallelism_one() {
        let sim = Session::new(inv_chain(1), SimConfig::small().with_cycle_parallelism(1));
        let ws = sim.make_windows(1000, 1);
        assert_eq!(ws, vec![(0, 1000)]);
    }

    #[test]
    fn chain_propagates_and_counts() {
        let graph = inv_chain(4);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        );
        let stim = vec![Waveform::from_toggles(false, &[100, 200, 300])];
        let r = sim.run(&stim, 400).unwrap();
        // Every inverter output toggles 3 times.
        for g in 0..4 {
            let sig = graph.gate_output(g).index();
            assert_eq!(r.toggle_count(sig), 3, "gate {g}");
        }
        // Output waveform: delays accumulate one tick per stage.
        let out = r.waveform(graph.gate_output(3).index()).unwrap();
        // Four inversions of an initially-low input: initial value 0.
        assert_eq!(out.raw(), &[0, 104, 204, 304, EOW]);
    }

    #[test]
    fn windowed_run_matches_single_window() {
        let graph = inv_chain(3);
        let stim = vec![Waveform::from_toggles(
            false,
            &[110, 210, 310, 410, 510, 610, 710],
        )];
        let single = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        )
        .run(&stim, 800)
        .unwrap();
        let windowed = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(8)
                .with_window_align(100),
        )
        .run(&stim, 800)
        .unwrap();
        for s in 0..graph.n_signals() {
            assert_eq!(
                single.toggle_count(s),
                windowed.toggle_count(s),
                "signal {s}"
            );
        }
        assert!(single.saif.diff(&windowed.saif).is_empty());
        // Stitched waveforms match too.
        let a = single.waveform(graph.gate_output(2).index()).unwrap();
        let b = windowed.waveform(graph.gate_output(2).index()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stimulus_mismatch_rejected() {
        let sim = Session::new(inv_chain(1), SimConfig::small());
        let err = sim.run(&[], 100);
        assert!(matches!(err, Err(CoreError::StimulusMismatch { .. })));
    }

    #[test]
    fn segmentation_on_tiny_memory() {
        let graph = inv_chain(2);
        let cfg = SimConfig {
            memory_words: 512,
            ..SimConfig::small()
        }
        .with_cycle_parallelism(16)
        .with_window_align(10);
        let sim = Session::new(Arc::clone(&graph), cfg);
        let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let r = sim.run(&stim, 1500).unwrap();
        assert!(r.segments() > 1, "expected segmentation");
        assert_eq!(r.toggle_count(graph.gate_output(1).index()), 149);
        // Without spill, waveform extraction is refused after segmentation.
        assert!(matches!(r.waveform(0), Err(CoreError::Segmented { .. })));
    }

    #[test]
    fn spilled_segmented_run_extracts_waveforms() {
        let graph = inv_chain(2);
        let cfg = SimConfig {
            memory_words: 512,
            ..SimConfig::small()
        }
        .with_cycle_parallelism(16)
        .with_window_align(10);
        let sim = Session::new(Arc::clone(&graph), cfg);
        let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let spilled = sim
            .run_with(&stim, 1500, &RunOptions::default().with_waveform_spill())
            .unwrap();
        assert!(spilled.segments() > 1, "expected segmentation");
        // The spill readback is accounted in the phase profile.
        assert!(spilled.app_profile.d2h_bytes > 0);
        assert!(spilled.app_profile.readback_seconds > 0.0);

        // Reference: the same run with a roomy arena, unsegmented.
        let roomy = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(16)
                .with_window_align(10),
        )
        .run(&stim, 1500)
        .unwrap();
        assert_eq!(roomy.segments(), 1);
        for s in 0..graph.n_signals() {
            assert_eq!(
                spilled.waveform(s).unwrap(),
                roomy.waveform(s).unwrap(),
                "signal {s} must survive the host spill"
            );
        }
    }

    #[test]
    fn incremental_reuses_out_of_cone_spill_slots_verbatim() {
        // Only the changed gate's fan-out cone is recomputed: every other
        // signal's spill slot must be *pointer-identical* to the previous
        // run's — shared chunk storage, same encoded pointer — not a
        // re-simulated copy that merely compares equal.
        let graph = inv_chain(6);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(4)
                .with_window_align(10),
        );
        let toggles: Vec<i32> = (1..40).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let opts = RunOptions::default().with_waveform_spill();
        let r0 = sim.run_with(&stim, 400, &opts).unwrap();
        // "Resize" the last inverter: its cone is exactly itself.
        let inc = sim.run_incremental(&r0, &[5], &stim, 400, &opts).unwrap();

        let base = r0.spilled.as_ref().unwrap();
        let derived = inc.spilled.as_ref().unwrap();
        for (i, c) in base.chunks.iter().enumerate() {
            assert!(
                Arc::ptr_eq(c, &derived.chunks[i]),
                "baseline chunk {i} must be shared, not copied"
            );
        }
        let cone_sig = graph.gate_output(5).index();
        let n = graph.n_signals();
        for w in 0..base.windows.len() {
            for s in 0..n {
                let slot = w * n + s;
                if s == cone_sig {
                    assert_ne!(
                        derived.ptrs[slot], base.ptrs[slot],
                        "cone output is recomputed into fresh storage (w={w})"
                    );
                } else {
                    assert_eq!(
                        derived.ptrs[slot], base.ptrs[slot],
                        "out-of-cone slot reused verbatim (w={w}, s={s})"
                    );
                }
            }
        }
        // Delays did not actually change, so the recomputed cone output
        // (and everything else) still decodes to the same waveforms.
        for s in 0..n {
            assert_eq!(inc.waveform(s).unwrap(), r0.waveform(s).unwrap());
        }
    }

    #[test]
    fn cone_plans_share_the_lru_budget() {
        // Distinct changed-sets build distinct cone plans; the cache keeps
        // them under the same capacity budget as full plans and reports
        // hits/misses separately.
        let graph = inv_chain(5);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(2)
                .with_window_align(10),
        );
        let toggles: Vec<i32> = (1..20).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let opts = RunOptions::default().with_waveform_spill();
        let r0 = sim.run_with(&stim, 200, &opts).unwrap();
        for set in [&[0usize][..], &[1], &[2], &[0]] {
            sim.run_incremental(&r0, set, &stim, 200, &opts).unwrap();
        }
        let stats = sim.plan_cache_stats();
        assert_eq!(stats.cone_misses, 3, "three distinct changed-sets");
        assert!(stats.cone_hits >= 1, "repeated changed-set hits its plan");
        assert!(stats.cached >= 3, "cone plans are retained in the cache");
    }

    #[test]
    fn device_backed_extraction_detects_recycled_arena() {
        // Without spill, a result's waveforms read live device memory; a
        // later run on the same session must turn extraction into a loud
        // StaleExtraction error, not silently serve the new run's data.
        let graph = inv_chain(2);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(4)
                .with_window_align(100),
        );
        let stim_a = vec![Waveform::from_toggles(false, &[110, 210, 310])];
        let stim_b = vec![Waveform::from_toggles(true, &[150, 250])];
        let r1 = sim.run(&stim_a, 400).unwrap();
        assert!(r1.waveform(0).is_ok(), "fresh extraction works");
        let _ = sim.run(&stim_b, 400).unwrap();
        assert!(
            matches!(r1.waveform(0), Err(CoreError::StaleExtraction)),
            "recycled arena must be detected"
        );
        assert!(matches!(
            r1.raw_window(0, 0),
            Err(CoreError::StaleExtraction)
        ));
    }

    #[test]
    fn spilled_waveforms_survive_later_runs_on_same_session() {
        // The spill contract is durability: a later run recycling the
        // session's device arena must not corrupt an earlier spilled
        // result (device-backed extraction cannot promise this).
        let graph = inv_chain(2);
        let cfg = SimConfig::small()
            .with_cycle_parallelism(4)
            .with_window_align(100);
        let sim = Session::new(Arc::clone(&graph), cfg.clone());
        let stim_a = vec![Waveform::from_toggles(false, &[110, 210, 310])];
        let stim_b = vec![Waveform::from_toggles(true, &[150, 250])];
        let r_a = sim
            .run_with(&stim_a, 400, &RunOptions::default().with_waveform_spill())
            .unwrap();
        assert_eq!(r_a.segments(), 1);
        // Gate outputs were read back even for the single-segment run —
        // that copy is what makes the result durable. PI windows are fed
        // from the host-resident stimulus, not read back.
        assert!(r_a.app_profile.d2h_bytes > 0);

        // Recycle the arena with a different stimulus...
        let _ = sim.run(&stim_b, 400).unwrap();

        // ...and the first result's waveforms are still correct.
        let reference = Session::new(graph, cfg).run(&stim_a, 400).unwrap();
        for s in 0..reference.toggle_counts_slice().len() {
            assert_eq!(
                r_a.waveform(s).unwrap(),
                reference.waveform(s).unwrap(),
                "signal {s} must stay valid after the arena was recycled"
            );
        }
    }

    #[test]
    fn plan_cache_reuses_equal_window_counts() {
        let graph = inv_chain(3);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(8)
                .with_window_align(100),
        );
        let stim = vec![Waveform::from_toggles(false, &[110, 210, 310, 410])];
        // Two segments of 4 windows each: the plan for nw=4 must be built
        // exactly once and hit once.
        let opts = RunOptions::default().with_segment_windows(4);
        let r = sim.run_with(&stim, 800, &opts).unwrap();
        assert_eq!(r.segments(), 2);
        let stats = sim.plan_cache_stats();
        assert_eq!(stats.misses, 1, "equal-nw segments share one build");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cached, 1);

        // A whole second run re-hits the same plan.
        let _ = sim.run_with(&stim, 800, &opts).unwrap();
        let stats = sim.plan_cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn plan_cache_lru_evicts_beyond_cap() {
        let graph = inv_chain(2);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_plan_cache_cap(2),
        );
        let _ = sim.plan(1, 0);
        let _ = sim.plan(2, 0);
        let _ = sim.plan(1, 0); // touch nw=1 so nw=2 becomes the LRU
        let _ = sim.plan(3, 0); // exceeds the cap: evicts nw=2
        let stats = sim.plan_cache_stats();
        assert_eq!(stats.cached, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        // The recently used nw=1 survived...
        let _ = sim.plan(1, 0);
        assert_eq!(sim.plan_cache_stats().hits, 2);
        // ...while the evicted nw=2 must rebuild.
        let _ = sim.plan(2, 0);
        assert_eq!(sim.plan_cache_stats().misses, 4);
    }

    #[test]
    fn plan_cache_unbounded_when_cap_zero() {
        let graph = inv_chain(1);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_plan_cache_cap(0),
        );
        for nw in 1..=24 {
            let _ = sim.plan(nw, 0);
        }
        let stats = sim.plan_cache_stats();
        assert_eq!(stats.cached, 24);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn scratch_pool_serves_best_fit_not_first_fit() {
        let graph = inv_chain(4);
        let sim = Session::new(Arc::clone(&graph), SimConfig::small());
        let big_plan = sim.plan(32, 0);
        let small_plan = sim.plan(2, 0);
        let big = sim.acquire_scratch(&big_plan);
        let small = sim.acquire_scratch(&small_plan);
        let (big_cap, small_cap) = (big.ptr_capacity(), small.ptr_capacity());
        assert!(big_cap > small_cap);
        // Pool order is big-first: first-fit would hand the big arena out.
        sim.release_scratch(big);
        sim.release_scratch(small);
        let got = sim.acquire_scratch(&small_plan);
        assert_eq!(got.ptr_capacity(), small_cap, "smallest adequate arena");
        sim.release_scratch(got);
    }

    #[test]
    fn scratch_pool_shrinks_persistently_oversized_arena() {
        let graph = inv_chain(4);
        let sim = Session::new(Arc::clone(&graph), SimConfig::small());
        let big_plan = sim.plan(32, 0);
        let tiny_plan = sim.plan(1, 0);
        let big = sim.acquire_scratch(&big_plan);
        let big_cap = big.ptr_capacity();
        sim.release_scratch(big);
        // The grossly oversized arena keeps serving tiny batches — until
        // the shrink heuristic drops it for a right-sized allocation.
        for k in 0..SCRATCH_SHRINK_AFTER {
            let got = sim.acquire_scratch(&tiny_plan);
            if k + 1 < SCRATCH_SHRINK_AFTER {
                assert_eq!(got.ptr_capacity(), big_cap, "still serving (use {k})");
            } else {
                assert!(
                    got.ptr_capacity() < big_cap,
                    "shrank to a right-sized arena"
                );
            }
            sim.release_scratch(got);
        }
    }

    #[test]
    fn forced_segmentation_matches_unsegmented() {
        let graph = inv_chain(3);
        let stim = vec![Waveform::from_toggles(
            false,
            &[110, 210, 310, 410, 510, 610],
        )];
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(8)
                .with_window_align(100),
        );
        let whole = sim.run(&stim, 800).unwrap();
        let split = sim
            .run_with(&stim, 800, &RunOptions::default().with_segment_windows(3))
            .unwrap();
        assert!(split.segments() > 1);
        assert!(whole.saif.diff(&split.saif).is_empty());
        assert_eq!(whole.total_toggles(), split.total_toggles());
    }

    #[test]
    fn parallel_prefix_sum_matches_serial() {
        let threads = PARALLEL_PREFIX_MIN + 3;
        let outs: Vec<AtomicU64> = (0..threads)
            .map(|i| {
                AtomicU64::new(
                    KernelOutput {
                        toggles: (i % 5) as u32,
                        max_extent: (i % 7) as u32,
                        initial_one: i % 2 == 0,
                    }
                    .pack(),
                )
            })
            .collect();
        let mk = || -> Vec<AtomicU32> { (0..threads).map(|_| AtomicU32::new(0)).collect() };
        let (serial_bases, parallel_bases) = (mk(), mk());
        let cap = usize::MAX;
        let (bump_s, words_s) = assign_bases_serial(&outs, &serial_bases, 10, cap).unwrap();
        let (bump_p, words_p) = assign_bases(&outs, &parallel_bases, 10, cap, 4).unwrap();
        assert_eq!(bump_s, bump_p);
        assert_eq!(words_s, words_p);
        for (a, b) in serial_bases.iter().zip(&parallel_bases) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
        // OOM from the parallel path is bit-identical to the serial one:
        // same first-overflowing-prefix error and the same partially
        // assigned bases.
        let serial_err = assign_bases_serial(&outs, &serial_bases, 0, 1000);
        let parallel_err = assign_bases(&outs, &parallel_bases, 0, 1000, 4);
        match (serial_err, parallel_err) {
            (
                Err(CoreError::OutOfMemory {
                    requested: r1,
                    capacity: c1,
                }),
                Err(CoreError::OutOfMemory {
                    requested: r2,
                    capacity: c2,
                }),
            ) => {
                assert_eq!(r1, r2, "same first overflowing prefix");
                assert_eq!(c1, c2);
            }
            other => panic!("both paths must report OOM: {other:?}"),
        }
        for (a, b) in serial_bases.iter().zip(&parallel_bases) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 48,
            .. proptest::prelude::ProptestConfig::default()
        })]

        /// The group-batched segmented prefix-sum ([`GroupAssigner`] over a
        /// contiguous slab) must match running [`assign_bases_serial`]
        /// level by level — carry (bump), per-level words and every
        /// assigned base bit-for-bit — including an OOM at an interior
        /// level of the fused group, where both must fail with the same
        /// error on the same level and leave the same carry behind.
        #[test]
        fn grouped_assignment_matches_per_level_serial(
            seed in 0u64..100_000,
            n_levels in 1usize..9,
            width in 1usize..50,
            workers in 1usize..8,
            tight_sel in 0usize..3,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA5A5);
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            // Random fused group: per-level segment sizes stacked into one
            // contiguous slab of packed count-pass outputs.
            let sizes: Vec<usize> = (0..n_levels).map(|_| 1 + next() as usize % width).collect();
            let total: usize = sizes.iter().sum();
            let outs: Vec<AtomicU64> = (0..total)
                .map(|_| {
                    AtomicU64::new(
                        KernelOutput {
                            toggles: (next() % 6) as u32,
                            max_extent: (next() % 7) as u32,
                            initial_one: next() % 2 == 0,
                        }
                        .pack(),
                    )
                })
                .collect();
            let total_words: u64 = outs
                .iter()
                .map(|o| KernelOutput::unpack_words_even(o.load(Ordering::Relaxed)) as u64)
                .sum();
            let bump0 = 16usize;
            // tight_sel 0: roomy arena (no OOM); otherwise a capacity cut
            // somewhere inside the group's allocation, so OOM can land at
            // any level, including interior ones.
            let capacity = if tight_sel == 0 {
                usize::MAX / 2
            } else {
                bump0 + (next() % (total_words + 1)) as usize
            };
            let mk = |n: usize| -> Vec<AtomicU32> {
                (0..n).map(|_| AtomicU32::new(u32::MAX)).collect()
            };
            let (ref_bases, grp_bases) = (mk(total), mk(total));

            let mut grouped = GroupAssigner::new(bump0, capacity, workers);
            let mut ref_bump = bump0;
            let mut off = 0usize;
            for (l, &sz) in sizes.iter().enumerate() {
                let seg = off..off + sz;
                let reference = assign_bases_serial(
                    &outs[seg.clone()],
                    &ref_bases[seg.clone()],
                    ref_bump,
                    capacity,
                );
                let got = grouped.advance(&outs[seg.clone()], &grp_bases[seg.clone()]);
                match (reference, got) {
                    (Ok((new_bump, ref_words)), Ok(grp_words)) => {
                        prop_assert_eq!(ref_words, grp_words, "level {} words", l);
                        ref_bump = new_bump;
                        prop_assert_eq!(ref_bump, grouped.bump(), "level {} carry", l);
                        for k in seg {
                            prop_assert_eq!(
                                ref_bases[k].load(Ordering::Relaxed),
                                grp_bases[k].load(Ordering::Relaxed),
                                "base {} of level {}", k, l
                            );
                        }
                    }
                    (
                        Err(CoreError::OutOfMemory { requested: r1, capacity: c1 }),
                        Err(CoreError::OutOfMemory { requested: r2, capacity: c2 }),
                    ) => {
                        // Same failure, same carry left behind (the fused
                        // launch aborts here, exactly like the per-level
                        // serial path did).
                        prop_assert_eq!(r1, r2, "level {} OOM request", l);
                        prop_assert_eq!(c1, c2);
                        prop_assert_eq!(ref_bump, grouped.bump(), "carry after OOM");
                        break;
                    }
                    (a, b) => {
                        prop_assert!(false, "level {l} diverged: ref {a:?} vs grouped {b:?}");
                    }
                }
                off += sz;
            }
        }
    }

    #[test]
    fn oom_halving_retry_converges_geometrically() {
        // 16 windows with an arena sized so the full batch and the
        // half-batch both overflow but quarter-batches fit: the retry loop
        // must halve 16 → 8 → 4 and then run 4 equal segments.
        let graph = inv_chain(2);
        let toggles: Vec<i32> = (1..160).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let duration = 1600;

        let run = |words: usize| {
            let cfg = SimConfig {
                memory_words: words,
                ..SimConfig::small()
            }
            .with_cycle_parallelism(16)
            .with_window_align(100);
            Session::new(Arc::clone(&graph), cfg).run(&stim, duration)
        };
        let roomy = run(1 << 20).unwrap();
        assert_eq!(roomy.segments(), 1);

        // Find a size that forces exactly 4 segments, then check the
        // result is unchanged.
        let mut seen4 = None;
        for words in (260..1000).step_by(10) {
            if let Ok(r) = run(words) {
                if r.segments() == 4 {
                    seen4 = Some(r);
                    break;
                }
            }
        }
        let tight = seen4.expect("some arena size yields 4 segments");
        assert!(roomy.saif.diff(&tight.saif).is_empty());
        assert_eq!(roomy.total_toggles(), tight.total_toggles());
    }

    #[test]
    fn hard_oom_when_one_window_too_big() {
        let graph = inv_chain(1);
        let cfg = SimConfig {
            memory_words: 8,
            ..SimConfig::small()
        };
        let sim = Session::new(graph, cfg);
        let stim = vec![Waveform::from_toggles(false, &(1..100).collect::<Vec<_>>())];
        let err = sim.run(&stim, 200);
        assert!(matches!(err, Err(CoreError::OutOfMemory { .. })));
    }

    #[test]
    fn saif_t0_t1_sum_to_duration() {
        let graph = inv_chain(2);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(4)
                .with_window_align(50),
        );
        let stim = vec![Waveform::from_toggles(true, &[40, 110, 160])];
        let r = sim.run(&stim, 200).unwrap();
        for (name, rec) in &r.saif.nets {
            assert_eq!(rec.t0 + rec.t1, 200, "net {name}");
        }
    }

    #[test]
    fn app_profile_populated() {
        let graph = inv_chain(3);
        // Fusion and speculation disabled: the paper's original schedule,
        // 2 launches per level (3 levels), one segment.
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_fuse_threshold(0)
                .with_speculation(Speculation::Off),
        );
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30])];
        let r = sim.run(&stim, 100).unwrap();
        assert!(r.app_profile.h2d_bytes > 0);
        assert_eq!(r.app_profile.launches, 6);
        assert_eq!(r.app_profile.fused_launches, 0);
        assert!(r.app_profile.h2d_seconds > 0.0);
        assert!(r.kernel_profile.modeled_seconds > 0.0);
        assert!(r.wall_seconds > 0.0);
        assert_eq!(r.app_profile.speculative_hit_rate, 0.0);
        assert_eq!(r.app_profile.overflow_repairs, 0);
        assert_eq!(r.app_profile.predicted_waste_words, 0);
    }

    #[test]
    fn speculation_halves_unfused_launches() {
        let graph = inv_chain(3);
        // Speculative single pass on the unfused schedule: 1 launch per
        // level instead of 2 — the first-touch static bound is sound, so
        // no repair launches appear even on a cold predictor.
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_fuse_threshold(0),
        );
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30])];
        let r = sim.run(&stim, 100).unwrap();
        assert_eq!(r.app_profile.launches, 3);
        assert_eq!(r.app_profile.overflow_repairs, 0);
        assert_eq!(r.app_profile.speculative_hit_rate, 1.0);

        // Bit-identical to the two-pass reference, with identical arena
        // semantics visible through the SAIF document.
        let off = Session::new(
            graph,
            SimConfig::small()
                .with_fuse_threshold(0)
                .with_speculation(Speculation::Off),
        )
        .run(&stim, 100)
        .unwrap();
        assert!(r.saif.diff(&off.saif).is_empty());
        assert!(
            r.app_profile.sync_launch_seconds < off.app_profile.sync_launch_seconds,
            "halved launch count must shrink modeled launch overhead"
        );
    }

    #[test]
    fn forced_overflow_repairs_exactly() {
        let graph = inv_chain(3);
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30, 40, 50])];
        // Reference: two-pass.
        let off = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_fuse_threshold(0)
                .with_speculation(Speculation::Off),
        )
        .run(&stim, 100)
        .unwrap();
        // Speculative run with the extent history poisoned to a 2-word
        // budget — far below any stored waveform here — so *every* gate
        // overflows and the entire output is produced by repair launches.
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_fuse_threshold(0)
                .with_speculation(Speculation::On),
        );
        sim.seed_extent_history(2);
        let r = sim.run(&stim, 100).unwrap();
        assert!(
            r.app_profile.overflow_repairs > 0,
            "tiny budgets must overflow"
        );
        // Windows that saw no toggles still fit 2 words, so the rate is
        // not 0 — but every toggling window must have missed.
        assert!(r.app_profile.speculative_hit_rate < 1.0);
        assert!(r.app_profile.predicted_waste_words > 0);
        assert!(
            r.saif.diff(&off.saif).is_empty(),
            "repair alone must reproduce the exact two-pass output"
        );
        assert_eq!(r.total_toggles(), off.total_toggles());
    }

    #[test]
    fn forced_overflow_on_fused_schedule_repairs_exactly() {
        let graph = inv_chain(3);
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30, 40, 50])];
        let off = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_speculation(Speculation::Off),
        )
        .run(&stim, 100)
        .unwrap();
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_speculation(Speculation::On),
        );
        sim.seed_extent_history(2);
        let r = sim.run(&stim, 100).unwrap();
        assert_eq!(r.app_profile.fused_launches, 1);
        assert!(r.app_profile.overflow_repairs > 0);
        assert!(r.saif.diff(&off.saif).is_empty());
    }

    #[test]
    fn auto_latch_falls_back_after_sustained_overflow() {
        let sim = Session::new(inv_chain(1), SimConfig::small());
        assert!(sim.speculation_active(), "Auto starts speculative");
        // Below the minimum sample: the latch must not trip even at 100%
        // overflow rate.
        sim.note_speculation(SPEC_AUTO_MIN_SAMPLE - 1, SPEC_AUTO_MIN_SAMPLE - 1);
        assert!(sim.speculation_active());
        // Cross the sample floor with an overflow rate past the threshold.
        sim.note_speculation(1, 1);
        assert!(!sim.speculation_active(), "latch trips past ~5% overflow");
        // The latch is permanent for the session.
        sim.note_speculation(1 << 20, 0);
        assert!(!sim.speculation_active());

        // A healthy hit rate never trips it.
        let healthy = Session::new(inv_chain(1), SimConfig::small());
        healthy.note_speculation(100_000, 100_000 / SPEC_AUTO_RATE_DIV);
        assert!(healthy.speculation_active(), "5% exactly is within budget");

        // Explicit On ignores the latch machinery entirely.
        let pinned = Session::new(
            inv_chain(1),
            SimConfig::small().with_speculation(Speculation::On),
        );
        pinned.note_speculation(1 << 20, 1 << 20);
        assert!(pinned.speculation_active());
    }

    #[test]
    fn fused_schedule_cuts_launches() {
        // 3 levels × 1 gate × 32 windows = 96 threads, well under the
        // default threshold: the whole chain executes as ONE fused launch.
        let graph = inv_chain(3);
        let sim = Session::new(Arc::clone(&graph), SimConfig::small());
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30])];
        let fused = sim.run(&stim, 100).unwrap();
        assert_eq!(fused.app_profile.launches, 1);
        assert_eq!(fused.app_profile.fused_launches, 1);

        // Bit-identical results either way.
        let unfused = Session::new(graph, SimConfig::small().with_fuse_threshold(0))
            .run(&stim, 100)
            .unwrap();
        assert!(fused.saif.diff(&unfused.saif).is_empty());
        assert!(
            fused.app_profile.sync_launch_seconds < unfused.app_profile.sync_launch_seconds,
            "fewer launches must shrink modeled launch overhead"
        );
    }

    #[test]
    fn fuse_threshold_override_is_cached_separately() {
        let graph = inv_chain(3);
        let sim = Session::new(Arc::clone(&graph), SimConfig::small());
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30])];
        let fused = sim.run(&stim, 100).unwrap();
        let unfused = sim
            .run_with(&stim, 100, &RunOptions::default().with_fuse_threshold(0))
            .unwrap();
        assert_eq!(fused.app_profile.fused_launches, 1);
        assert_eq!(unfused.app_profile.fused_launches, 0);
        assert!(fused.saif.diff(&unfused.saif).is_empty());
        // Two distinct plan keys, no eviction.
        assert_eq!(sim.plan_cache_stats().cached, 2);
    }

    #[test]
    fn fused_oom_surfaces_and_segments() {
        // Tiny arena + fusion: the OOM raised inside a fused launch's
        // phase callback must abort cleanly and trigger segmentation.
        let graph = inv_chain(2);
        let cfg = SimConfig {
            memory_words: 512,
            ..SimConfig::small()
        }
        .with_cycle_parallelism(16)
        .with_window_align(10);
        let sim = Session::new(Arc::clone(&graph), cfg);
        let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let r = sim.run(&stim, 1500).unwrap();
        assert!(r.segments() > 1, "expected segmentation");
        assert_eq!(r.toggle_count(graph.gate_output(1).index()), 149);
    }

    #[test]
    fn run_cpu_matches_gpu_results() {
        let graph = inv_chain(3);
        let sim = Session::new(Arc::clone(&graph), SimConfig::small());
        let stim = vec![Waveform::from_toggles(false, &[10, 25, 40, 55])];
        let gpu = sim.run(&stim, 100).unwrap();
        let cpu = sim.run_cpu(&stim, 100, 2).unwrap();
        assert!(gpu.saif.diff(&cpu.saif).is_empty());
    }

    #[test]
    fn activity_factor_computed() {
        let graph = inv_chain(1);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        );
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30, 40])];
        let r = sim.run(&stim, 100).unwrap();
        // 8 toggles over 2 signals, 10 cycles of length 10.
        assert!((r.activity_factor(10) - 0.4).abs() < 1e-9);
        assert_eq!(r.total_toggles(), 8);
    }

    #[test]
    fn streaming_sink_sees_every_window() {
        struct Counter {
            calls: usize,
            windows_seen: usize,
        }
        impl WaveformSink for Counter {
            fn waveform(&mut self, _signal: usize, info: &WindowInfo, raw: &[i32]) {
                self.calls += 1;
                self.windows_seen = self.windows_seen.max(info.window + 1);
                assert!(raw.contains(&EOW), "raw words carry the terminator");
            }
        }
        let graph = inv_chain(2);
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(4)
                .with_window_align(100),
        );
        let stim = vec![Waveform::from_toggles(false, &[110, 210, 310])];
        let mut sink = Counter {
            calls: 0,
            windows_seen: 0,
        };
        let r = sim
            .run_streaming(&stim, 400, &RunOptions::default(), &mut sink)
            .unwrap();
        assert_eq!(sink.windows_seen, 4);
        // Every (signal, window) pair is present on this fully-driven chain.
        assert_eq!(sink.calls, 4 * graph.n_signals());
        assert_eq!(r.segments(), 1);
    }
}

/// Exhaustive interleaving tests for the session's lock-free protocols,
/// run on the loom model types (`cargo test --features model-check`).
/// A failing schedule prints a `replay schedule: <string>` line; re-run it
/// with `loom::Builder { replay: Some(s), .. }` to step the exact schedule.
#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;

    /// The overlapped-publish hand-off: the worker must never observe a
    /// ticket slot before the issuer's `issued` Release store publishes it,
    /// and must drain every ticket in issue order without skipping a
    /// level. Weakening `issued.store(.., Release)` in
    /// [`PublishPipeline::issue`] to `Relaxed` fails this test (the worker
    /// reads a stale ticket slot).
    #[test]
    fn publish_tickets_never_skip_or_tear() {
        loom::model(|| {
            let pipe = PublishPipeline::new(2);
            crate::sync::thread::scope(|s| {
                let p = &pipe;
                s.spawn(move |_| {
                    let _guard = p.worker_guard();
                    let mut next = 0usize;
                    while let Some(level) = p.wait_ticket(next) {
                        assert_eq!(
                            level,
                            [7, 9][next],
                            "ticket read before its slot was published"
                        );
                        p.complete(next);
                        next += 1;
                    }
                    assert_eq!(next, 2, "a ticket was skipped");
                });
                pipe.issue(7);
                pipe.fence(1);
                pipe.issue(9);
                pipe.fence_all();
                pipe.close();
            })
            .expect("model worker panicked");
        });
    }

    /// The failover work handoff: survivor threads claiming a dead
    /// device's sub-shards through [`ShardQueue`] must together execute
    /// every queued range exactly once, in every interleaving — no range
    /// dropped (windows silently missing from the merged result) and no
    /// range claimed twice (double-counted toggles).
    #[test]
    fn failover_ranges_claimed_exactly_once() {
        loom::model(|| {
            let queue = std::sync::Arc::new(ShardQueue::new(vec![(0, 2), (2, 1), (3, 2)]));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let q = std::sync::Arc::clone(&queue);
                handles.push(loom::thread::spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(r) = q.claim() {
                        mine.push(r);
                    }
                    mine
                }));
            }
            let mut all: Vec<(usize, usize)> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(
                all,
                vec![(0, 2), (2, 1), (3, 2)],
                "every range claimed exactly once"
            );
        });
    }

    /// A fence observing a dead worker must panic instead of spinning
    /// forever — in every interleaving of the worker's death.
    #[test]
    fn fence_fails_loudly_when_worker_dies() {
        loom::model(|| {
            let pipe = PublishPipeline::new(1);
            pipe.issue(0);
            crate::sync::thread::scope(|s| {
                let p = &pipe;
                s.spawn(move |_| {
                    // Worker takes its guard and dies without completing.
                    let _guard = p.worker_guard();
                });
                let fenced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    p.fence_all();
                }));
                // Either the fence saw the death and panicked, or the
                // worker had not died yet and... it can never complete, so
                // the fence must have panicked.
                assert!(
                    fenced.is_err(),
                    "fence must not return with tickets outstanding"
                );
            })
            .expect("model worker panicked");
        });
    }

    /// The carry-chained prefix-sum fan-out: chunk workers writing bases
    /// with Relaxed stores, synchronized only by the scope spawn/join
    /// edges, must equal the serial scan bit-for-bit in every
    /// interleaving.
    #[test]
    fn parallel_carry_chain_matches_serial_prefix_sum() {
        loom::model(|| {
            let outs: Vec<AtomicU64> = (0..4)
                .map(|i| {
                    AtomicU64::new(
                        KernelOutput {
                            toggles: (i % 3) as u32,
                            max_extent: (i % 2) as u32,
                            initial_one: i % 2 == 1,
                        }
                        .pack(),
                    )
                })
                .collect();
            let mk = || -> Vec<AtomicU32> { (0..4).map(|_| AtomicU32::new(0)).collect() };
            let (serial_bases, parallel_bases) = (mk(), mk());
            let (bump_s, words_s) =
                assign_bases_serial(&outs, &serial_bases, 6, usize::MAX).unwrap();
            let (bump_p, words_p) =
                assign_bases_bounded(&outs, &parallel_bases, 6, usize::MAX, 2, 2).unwrap();
            assert_eq!(bump_s, bump_p, "carry diverged");
            assert_eq!(words_s, words_p);
            for (a, b) in serial_bases.iter().zip(&parallel_bases) {
                assert_eq!(
                    a.load(Ordering::Relaxed),
                    b.load(Ordering::Relaxed),
                    "assigned base diverged from the serial prefix sum"
                );
            }
        });
    }

    /// The speculative extent predictor under concurrent observers
    /// (repair scans of different shards/launches share one table):
    /// `fetch_max` keeps every entry monotone, so a reader that already
    /// observed the larger value can never see a smaller one, and after
    /// all observers join the prediction is exactly the maximum — in
    /// every interleaving.
    #[test]
    fn extent_predictor_observes_are_monotone_max() {
        loom::model(|| {
            let p = crate::schedule::ExtentPredictor::new(1);
            crate::sync::thread::scope(|s| {
                let p = &p;
                s.spawn(move |_| p.observe(0, 6));
                p.observe(0, 10);
                assert_eq!(
                    p.predict(0),
                    Some(10),
                    "a concurrent smaller observation shrank the entry"
                );
            })
            .expect("model observer panicked");
            assert_eq!(p.predict(0), Some(10));
        });
    }

    /// The kernel-side overflow recorder: concurrent overflowing threads
    /// claim slots with a Relaxed `fetch_add` cursor and store their
    /// column ids — in every interleaving the cursor hands out unique
    /// slots, no recorded column is lost or torn, and (after the sort the
    /// host scan applies) the recorded set is exactly the overflowed
    /// columns regardless of thread order.
    #[test]
    fn overflow_recorder_loses_no_column() {
        loom::model(|| {
            let ovf: Vec<AtomicU32> = (0..2).map(|_| AtomicU32::new(u32::MAX)).collect();
            let len = crate::sync::atomic::AtomicUsize::new(0);
            crate::sync::thread::scope(|s| {
                let (ovf, len) = (&ovf, &len);
                s.spawn(move |_| {
                    let i = len.fetch_add(1, Ordering::Relaxed);
                    ovf[i].store(3, Ordering::Relaxed);
                });
                let i = len.fetch_add(1, Ordering::Relaxed);
                ovf[i].store(5, Ordering::Relaxed);
            })
            .expect("model recorder panicked");
            let n = len.load(Ordering::Relaxed);
            assert_eq!(n, 2, "cursor lost a claim");
            let mut cols: Vec<u32> = ovf[..n].iter().map(|s| s.load(Ordering::Relaxed)).collect();
            cols.sort_unstable();
            assert_eq!(cols, [3, 5], "a recorded column was lost or torn");
        });
    }
}
