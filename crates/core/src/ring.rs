//! Fixed-capacity reserve/commit ring for SAIF dump messages.
//!
//! The seed engine streamed finished (signal, window) waveforms to the
//! asynchronous SAIF dumper over an unbounded channel, which heap-allocates
//! per message — one allocation per (gate, window) thread, squarely on the
//! hot path. This ring is allocated once per window batch and then pushes
//! and pops without touching the allocator.
//!
//! Concurrency contract: *multiple* producers, exactly one consumer. The
//! pipelined executor's publish workers partition a level by gate range and
//! enqueue their chunks concurrently through [`DumpRing::push_slice`],
//! which reserves ring space **once per chunk** (one `fetch_add` on the
//! reservation cursor) instead of once per message, writes its slots, and
//! then commits in reservation order so the consumer only ever reads fully
//! written slots. The single-message [`DumpRing::push`] is the degenerate
//! one-element slice.

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use gatspi_wave::SimTime;

/// One finished (signal, window) waveform headed for the SAIF dumper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DumpMsg {
    /// Signal index.
    pub signal: u32,
    /// Word offset of the stored waveform in device memory.
    pub ptr: u32,
    /// Window length: the scan clips at this time.
    pub clip: SimTime,
}

impl DumpMsg {
    /// Placeholder for chunk buffers awaiting real messages (never popped:
    /// slots are committed only after being overwritten).
    pub const EMPTY: DumpMsg = DumpMsg {
        signal: 0,
        ptr: 0,
        clip: 0,
    };
}

/// Typed panic payload raised by a producer when the dump consumer (the
/// SAIF scan) has died and its messages can never be delivered. The session
/// layer catches it at the segment boundary and surfaces
/// `CoreError::SinkClosed` instead of unwinding the process.
#[derive(Debug, Clone)]
pub(crate) struct SinkClosedPanic {
    /// Human-readable detail (which wait detected the dead consumer).
    pub detail: String,
}

/// Bounded multi-producer/single-consumer queue of [`DumpMsg`] with
/// reserve/commit batching and spin-yield backpressure.
#[derive(Debug)]
pub(crate) struct DumpRing {
    /// `(signal << 32) | ptr` per slot.
    sig_ptr: Vec<AtomicU64>,
    /// `clip` per slot (as `u32` bits).
    clip: Vec<AtomicU64>,
    mask: usize,
    /// Reservation cursor (total slots handed out to producers). A chunk
    /// reserves its whole slot range with one `fetch_add` here.
    reserve: AtomicUsize,
    /// Publish cursor (total committed pushes): slots below it are fully
    /// written and visible to the consumer. Chunks commit in reservation
    /// order.
    tail: AtomicUsize,
    /// Consumer cursor (total pops).
    head: AtomicUsize,
    closed: AtomicBool,
    /// Set when the consumer thread exits (normally or by panic); lets a
    /// full-ring `push` fail loudly instead of waiting forever on a
    /// consumer that will never drain it.
    consumer_gone: AtomicBool,
    /// Total nanoseconds producers spent waiting on a full ring —
    /// backpressure from a SAIF scanner that cannot keep up. Surfaced as
    /// `AppPhaseProfile::dump_stall_seconds` so dump-bound runs are visible.
    stall_nanos: AtomicU64,
}

/// RAII marker held by the consumer thread; flags the ring on drop — which
/// includes unwinding out of a panicking SAIF scan.
#[derive(Debug)]
pub(crate) struct ConsumerGuard<'a>(&'a DumpRing);

impl Drop for ConsumerGuard<'_> {
    fn drop(&mut self) {
        self.0.consumer_gone.store(true, Ordering::Release);
    }
}

/// RAII marker held by the producer side; closes the ring on drop — which
/// includes unwinding out of a panicking engine batch.
#[derive(Debug)]
pub(crate) struct ProducerGuard<'a>(&'a DumpRing);

impl Drop for ProducerGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl DumpRing {
    /// Creates a ring holding at least `capacity` messages (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let mut sig_ptr = Vec::with_capacity(cap);
        let mut clip = Vec::with_capacity(cap);
        sig_ptr.resize_with(cap, || AtomicU64::new(0));
        clip.resize_with(cap, || AtomicU64::new(0));
        DumpRing {
            sig_ptr,
            clip,
            mask: cap - 1,
            reserve: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            consumer_gone: AtomicBool::new(false),
            stall_nanos: AtomicU64::new(0),
        }
    }

    /// Registers the calling thread as the consumer; keep the guard alive
    /// for the whole pop loop.
    pub fn consumer_guard(&self) -> ConsumerGuard<'_> {
        ConsumerGuard(self)
    }

    /// RAII closer for the producer side: closing on drop guarantees the
    /// consumer's `pop` loop terminates even when the producer unwinds
    /// mid-batch (a panicking engine must not leave the dumper spinning on
    /// an open, empty ring). The explicit [`DumpRing::close`] remains for
    /// the normal path; closing twice is harmless.
    pub fn producer_guard(&self) -> ProducerGuard<'_> {
        ProducerGuard(self)
    }

    /// Enqueues one message (the one-element [`DumpRing::push_slice`]).
    ///
    /// # Panics
    ///
    /// As [`DumpRing::push_slice`].
    #[cfg(test)]
    pub fn push(&self, msg: DumpMsg) {
        self.push_slice(std::slice::from_ref(&msg));
    }

    /// Enqueues a whole chunk with a single ring-space reservation: one
    /// `fetch_add` claims `msgs.len()` consecutive slots, the slots are
    /// written, and the chunk commits once the publish cursor reaches its
    /// reservation (in-order commit keeps the consumer single-cursor).
    /// Waits (yield, then short sleeps) while the ring lacks space.
    ///
    /// # Panics
    ///
    /// Panics if `msgs` exceeds the ring capacity (it could never fit), or
    /// if the consumer thread has terminated while the ring lacks space —
    /// the messages can never be delivered, and propagating beats hanging
    /// the engine.
    pub fn push_slice(&self, msgs: &[DumpMsg]) {
        let n = msgs.len();
        if n == 0 {
            return;
        }
        let cap = self.mask + 1;
        assert!(
            n <= cap,
            "chunk of {n} messages exceeds ring capacity {cap}"
        );
        // relaxed-ok: the reservation cursor only partitions slot indices
        // among producers (each chunk gets a unique, contiguous range); the
        // consumer never reads it. Visibility of the slot contents rides the
        // in-order commit's `tail` Release below (model test
        // `consumer_never_reads_uncommitted_slots`).
        let start = self.reserve.fetch_add(n, Ordering::Relaxed);
        if start + n - self.head.load(Ordering::Acquire) > cap {
            // Full: measure the backpressure stall (timer only on the slow
            // path, so the common uncontended push stays clock-free).
            let t0 = std::time::Instant::now();
            let mut spins = 0u32;
            while start + n - self.head.load(Ordering::Acquire) > cap {
                if self.consumer_gone.load(Ordering::Acquire) {
                    std::panic::panic_any(SinkClosedPanic {
                        detail: "SAIF dumper terminated with the ring full".into(),
                    });
                }
                backoff(&mut spins);
            }
            // relaxed-ok: backpressure telemetry, read only for reports.
            self.stall_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        for (k, msg) in msgs.iter().enumerate() {
            let i = (start + k) & self.mask;
            // relaxed-ok: slot writes are published to the consumer by the
            // `tail` Release store below (in-order commit), and ordered
            // against the consumer's previous read of a recycled slot by the
            // `head` Acquire load above. Weakening the commit to Relaxed is
            // caught by model test `consumer_never_reads_uncommitted_slots`.
            self.sig_ptr[i].store(
                (u64::from(msg.signal) << 32) | u64::from(msg.ptr),
                Ordering::Relaxed,
            );
            // relaxed-ok: see above.
            self.clip[i].store(u64::from(msg.clip as u32), Ordering::Relaxed);
        }
        // In-order commit: wait for every earlier reservation to publish,
        // then advance the cursor over this chunk in one step.
        let mut spins = 0u32;
        while self.tail.load(Ordering::Acquire) != start {
            if self.consumer_gone.load(Ordering::Acquire) {
                std::panic::panic_any(SinkClosedPanic {
                    detail: "SAIF dumper terminated with commits outstanding".into(),
                });
            }
            backoff(&mut spins);
        }
        // anchor: ring-commit-store
        // pairs-with: crates/core/src/ring.rs:ring-consume-load
        self.tail.store(start + n, Ordering::Release);
    }

    /// Dequeues the next message, blocking until one arrives; returns
    /// `None` once the ring is closed and drained. An empty ring is waited
    /// on with a few yields and then short sleeps, so an idle dumper does
    /// not burn a core while a long kernel level runs.
    pub fn pop(&self) -> Option<DumpMsg> {
        let head = self.head.load(Ordering::Acquire);
        let mut spins = 0u32;
        loop {
            // anchor: ring-consume-load
            // pairs-with: crates/core/src/ring.rs:ring-commit-store
            if self.tail.load(Ordering::Acquire) != head {
                break;
            }
            if self.closed.load(Ordering::Acquire) && self.tail.load(Ordering::Acquire) == head {
                return None;
            }
            backoff(&mut spins);
        }
        let i = head & self.mask;
        // relaxed-ok: the `tail` Acquire load above synchronized with the
        // producer's commit Release, which happens-after the slot writes —
        // so these reads see the committed contents without extra ordering.
        let sp = self.sig_ptr[i].load(Ordering::Relaxed);
        // relaxed-ok: see above.
        let clip = self.clip[i].load(Ordering::Relaxed) as u32 as SimTime;
        self.head.store(head + 1, Ordering::Release);
        Some(DumpMsg {
            signal: (sp >> 32) as u32,
            ptr: sp as u32,
            clip,
        })
    }

    /// Marks the producer side finished; `pop` returns `None` after the
    /// remaining messages drain.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Total seconds producers have spent stalled on a full ring.
    pub fn producer_stall_seconds(&self) -> f64 {
        // relaxed-ok: telemetry read, no payload depends on it.
        self.stall_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

/// Wait strategy for an empty/full ring: yield for the first iterations
/// (message gaps are usually short), then sleep in 50µs slices so a long
/// wait costs near-zero CPU. Shared with the publish pipeline's ticket and
/// fence waits in [`crate::session`].
pub(crate) fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        crate::sync::thread::yield_now();
    } else {
        crate::sync::thread::sleep(std::time::Duration::from_micros(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let ring = DumpRing::with_capacity(4);
        for k in 0..3u32 {
            ring.push(DumpMsg {
                signal: k,
                ptr: 10 * k,
                clip: k as SimTime,
            });
        }
        ring.close();
        for k in 0..3u32 {
            assert_eq!(
                ring.pop(),
                Some(DumpMsg {
                    signal: k,
                    ptr: 10 * k,
                    clip: k as SimTime
                })
            );
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn backpressure_and_concurrency() {
        // Tiny ring forces the producer to wait on the consumer; all
        // messages must arrive intact and in order.
        let ring = DumpRing::with_capacity(2);
        let n = 10_000u32;
        std::thread::scope(|s| {
            s.spawn(|| {
                for k in 0..n {
                    ring.push(DumpMsg {
                        signal: k,
                        ptr: k ^ 0xABCD,
                        clip: (k % 1000) as SimTime,
                    });
                }
                ring.close();
            });
            let mut expected = 0u32;
            while let Some(m) = ring.pop() {
                assert_eq!(m.signal, expected);
                assert_eq!(m.ptr, expected ^ 0xABCD);
                expected += 1;
            }
            assert_eq!(expected, n);
        });
        // 10k pushes through a 2-slot ring cannot avoid full-ring waits;
        // the backpressure telemetry must have registered them.
        assert!(
            ring.producer_stall_seconds() > 0.0,
            "stall time must be recorded under backpressure"
        );
    }

    #[test]
    fn batched_chunks_from_many_producers_arrive_intact() {
        // 4 producers × 1000 messages in chunks of 16 through a ring
        // smaller than the total: every message must arrive exactly once.
        let ring = DumpRing::with_capacity(64);
        let producers = 4u32;
        let per = 1000u32;
        let mut seen = vec![0u32; (producers * per) as usize];
        std::thread::scope(|s| {
            let ring = &ring;
            let handle = s.spawn(move || {
                let mut got = Vec::new();
                while let Some(m) = ring.pop() {
                    got.push(m);
                }
                got
            });
            std::thread::scope(|inner| {
                for p in 0..producers {
                    inner.spawn(move || {
                        let mut chunk = [DumpMsg::EMPTY; 16];
                        let mut n = 0;
                        for k in 0..per {
                            chunk[n] = DumpMsg {
                                signal: p * per + k,
                                ptr: (p * per + k) ^ 0x5A5A,
                                clip: 7,
                            };
                            n += 1;
                            if n == chunk.len() {
                                ring.push_slice(&chunk);
                                n = 0;
                            }
                        }
                        ring.push_slice(&chunk[..n]);
                    });
                }
            });
            ring.close();
            for m in handle.join().unwrap() {
                assert_eq!(m.ptr, m.signal ^ 0x5A5A, "slot contents intact");
                assert_eq!(m.clip, 7);
                seen[m.signal as usize] += 1;
            }
        });
        assert!(
            seen.iter().all(|&c| c == 1),
            "every message delivered exactly once"
        );
    }

    #[test]
    fn empty_slice_push_is_noop() {
        let ring = DumpRing::with_capacity(2);
        ring.push_slice(&[]);
        ring.close();
        assert_eq!(ring.pop(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds ring capacity")]
    fn oversized_chunk_rejected() {
        let ring = DumpRing::with_capacity(2);
        let msgs = [DumpMsg::EMPTY; 3];
        ring.push_slice(&msgs);
    }

    #[test]
    fn uncontended_pushes_record_no_stall() {
        let ring = DumpRing::with_capacity(16);
        for k in 0..8u32 {
            ring.push(DumpMsg {
                signal: k,
                ptr: k,
                clip: 1,
            });
        }
        assert_eq!(ring.producer_stall_seconds(), 0.0);
    }

    #[test]
    fn push_panics_when_consumer_dies_with_ring_full() {
        let ring = DumpRing::with_capacity(2);
        drop(ring.consumer_guard()); // consumer came and went
        let msg = DumpMsg {
            signal: 1,
            ptr: 2,
            clip: 3,
        };
        ring.push(msg);
        ring.push(msg);
        // Ring full, consumer dead: must fail loudly, not hang.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ring.push(msg)));
        assert!(result.is_err(), "push must panic on a dead consumer");
    }

    #[test]
    fn producer_guard_closes_on_drop() {
        let ring = DumpRing::with_capacity(4);
        {
            let _closer = ring.producer_guard();
        }
        assert_eq!(ring.pop(), None, "dropped guard must close the ring");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let ring = DumpRing::with_capacity(5);
        assert_eq!(ring.mask + 1, 8);
        let ring = DumpRing::with_capacity(0);
        assert_eq!(ring.mask + 1, 2);
    }
}

/// Randomized edge cases around the ring's wrap and RAII teardown paths.
#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn wraparound_at_exact_capacity() {
        // Fill to exactly the capacity, drain, and repeat: the cursors
        // cross the mask boundary every round, so slot reuse at the exact
        // wrap point must stay FIFO and intact.
        let ring = DumpRing::with_capacity(4);
        assert_eq!(ring.mask + 1, 4);
        for round in 0..3u32 {
            for k in 0..4u32 {
                let v = round * 4 + k;
                ring.push(DumpMsg {
                    signal: v,
                    ptr: v ^ 0x33,
                    clip: 1,
                });
            }
            for k in 0..4u32 {
                let m = ring.pop().expect("full ring drains");
                assert_eq!(m.signal, round * 4 + k);
                assert_eq!(m.ptr, m.signal ^ 0x33);
            }
        }
        ring.close();
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn push_slice_larger_than_remaining_space_waits_for_drain() {
        // 3 of 4 slots full, then a 3-slot chunk: it cannot fit until the
        // consumer drains, so the producer must block and then deliver the
        // chunk intact — never overwrite undrained slots.
        let ring = DumpRing::with_capacity(4);
        for k in 0..3u32 {
            ring.push(DumpMsg {
                signal: k,
                ptr: k,
                clip: 0,
            });
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let chunk: Vec<DumpMsg> = (3..6u32)
                    .map(|k| DumpMsg {
                        signal: k,
                        ptr: k,
                        clip: 0,
                    })
                    .collect();
                ring.push_slice(&chunk);
                ring.close();
            });
            for k in 0..6u32 {
                let m = ring.pop().expect("all six must arrive");
                assert_eq!(m.signal, k, "order preserved across the blocked chunk");
            }
            assert_eq!(ring.pop(), None);
        });
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64,
            .. proptest::prelude::ProptestConfig::default()
        })]

        /// Dropping the producer guard mid-batch (an unwinding engine)
        /// must close the ring so the consumer drains exactly the
        /// committed messages and terminates.
        #[test]
        fn producer_guard_drop_mid_batch_releases_consumer(
            cap in 0usize..33,
            n in 0usize..20,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let ring = DumpRing::with_capacity(cap);
            let fits = n.min(ring.mask + 1);
            {
                let _open = ring.producer_guard();
                for k in 0..fits as u32 {
                    ring.push(DumpMsg { signal: k, ptr: k ^ 0x77, clip: 2 });
                }
                // Guard drops here: the batch unwound mid-stream.
            }
            let _consumer = ring.consumer_guard();
            for k in 0..fits as u32 {
                let m = ring.pop();
                prop_assert!(m.is_some(), "committed messages must drain");
                let m = m.unwrap();
                prop_assert_eq!(m.signal, k);
                prop_assert_eq!(m.ptr, k ^ 0x77);
            }
            prop_assert_eq!(ring.pop(), None);
        }

        /// Dropping the consumer guard mid-batch (a panicking SAIF scan)
        /// must make a full-ring push fail loudly instead of hanging.
        #[test]
        fn consumer_guard_drop_mid_batch_fails_blocked_producers(
            cap_sel in 0usize..9,
            drained_sel in 0usize..4,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let ring = DumpRing::with_capacity(cap_sel);
            let cap = ring.mask + 1;
            for k in 0..cap as u32 {
                ring.push(DumpMsg { signal: k, ptr: k, clip: 0 });
            }
            let drained = drained_sel.min(cap);
            {
                let _consumer = ring.consumer_guard();
                for k in 0..drained as u32 {
                    prop_assert_eq!(ring.pop().map(|m| m.signal), Some(k));
                }
                // Guard drops here: the scan panicked mid-batch.
            }
            // Refill to exactly full (no wait), then one more push can
            // never be delivered: it must panic, not spin forever.
            for k in 0..drained as u32 {
                ring.push(DumpMsg { signal: 100 + k, ptr: 0, clip: 0 });
            }
            let blocked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ring.push(DumpMsg { signal: 999, ptr: 0, clip: 0 });
            }));
            prop_assert!(blocked.is_err(), "push must panic on a dead consumer");
        }
    }
}

/// Exhaustive interleaving tests on the loom model types
/// (`cargo test --features model-check`). A failure prints a
/// `replay schedule: <string>` line for deterministic re-execution.
#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;

    /// The MPSC reserve/commit invariant: the consumer must never observe
    /// a slot whose producer has not committed it, in any interleaving of
    /// two concurrent producers and the consumer. Weakening the commit
    /// `tail.store(start + n, Release)` in [`DumpRing::push_slice`] to
    /// `Relaxed` fails this test: the consumer reads a torn or empty slot.
    #[test]
    fn consumer_never_reads_uncommitted_slots() {
        loom::model(|| {
            let ring = DumpRing::with_capacity(2);
            crate::sync::thread::scope(|s| {
                for p in 1..=2u32 {
                    let ring = &ring;
                    s.spawn(move |_| {
                        ring.push(DumpMsg {
                            signal: p,
                            ptr: p ^ 0xA,
                            clip: p as SimTime,
                        });
                    });
                }
                let mut seen = [false; 3];
                for _ in 0..2 {
                    let m = ring.pop().expect("two messages were pushed");
                    assert!((1..=2).contains(&m.signal), "uncommitted slot read: {m:?}");
                    assert_eq!(m.ptr, m.signal ^ 0xA, "slot torn");
                    assert_eq!(m.clip, m.signal as SimTime, "slot torn");
                    assert!(!seen[m.signal as usize], "duplicate delivery");
                    seen[m.signal as usize] = true;
                }
            })
            .expect("model producer panicked");
        });
    }

    /// Close/drain hand-off: a producer pushing then closing, concurrent
    /// with the consumer, must deliver the message exactly once and then
    /// terminate the pop loop — no lost wakeup in any schedule.
    #[test]
    fn close_never_loses_the_last_message() {
        loom::model(|| {
            let ring = DumpRing::with_capacity(2);
            crate::sync::thread::scope(|s| {
                let r = &ring;
                s.spawn(move |_| {
                    r.push(DumpMsg {
                        signal: 5,
                        ptr: 6,
                        clip: 7,
                    });
                    r.close();
                });
                let m = ring.pop().expect("message must survive the close");
                assert_eq!((m.signal, m.ptr, m.clip), (5, 6, 7));
                assert_eq!(ring.pop(), None, "drained ring must report closed");
            })
            .expect("model producer panicked");
        });
    }
}
