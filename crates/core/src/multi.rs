//! Deprecated free-function shim for multi-GPU re-simulation.
//!
//! The paper's cycle-parallel workload distribution (§5, Fig. 6) now lives
//! on the session: [`Session::run_multi_gpu`](crate::Session::run_multi_gpu)
//! builds the launch schedule once per shard window count through the plan
//! cache and shares it read-only across devices, instead of each shard
//! re-walking the graph. Every shard executes through the same overlapped
//! publish pipeline as single-device runs (folded store-pass publication,
//! per-shard publish worker and dump ring — see `session.rs`), so the
//! serial-vs-pipelined equivalence guarantees hold per device. This module
//! keeps the original free function as a thin delegating shim.

use gatspi_gpu::MultiGpu;
use gatspi_wave::{SimTime, Waveform};

use crate::engine::Gatspi;
use crate::{Result, SimResult};

/// Runs the simulation across `gpus`, sharding windows evenly.
///
/// # Errors
///
/// As [`Session::run_multi_gpu`](crate::Session::run_multi_gpu).
#[deprecated(since = "0.2.0", note = "use `Session::run_multi_gpu` instead")]
pub fn run_multi_gpu(
    sim: &Gatspi,
    gpus: &MultiGpu,
    stimuli: &[Waveform],
    duration: SimTime,
) -> Result<SimResult> {
    sim.session().run_multi_gpu(gpus, stimuli, duration)
}

#[cfg(test)]
mod tests {
    use crate::{CoreError, Session, SimConfig};
    use gatspi_gpu::{DeviceSpec, MultiGpu};
    use gatspi_graph::{CircuitGraph, GraphOptions};
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use gatspi_wave::Waveform;
    use std::sync::Arc;

    fn graph() -> Arc<CircuitGraph> {
        let mut b = NetlistBuilder::new("m", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "XOR2", &[a, c], n1).unwrap();
        b.add_gate("u2", "INV", &[n1], y).unwrap();
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    #[test]
    fn multi_gpu_matches_single_device() {
        let g = graph();
        let cfg = SimConfig::small()
            .with_cycle_parallelism(4)
            .with_window_align(100);
        let sim = Session::new(Arc::clone(&g), cfg);
        let stimuli = vec![
            Waveform::from_toggles(false, &[150, 420, 650]),
            Waveform::from_toggles(true, &[310, 890]),
        ];
        let single = sim.run(&stimuli, 1000).unwrap();
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 18);
        let multi = sim.run_multi_gpu(&gpus, &stimuli, 1000).unwrap();
        assert!(single.saif.diff(&multi.saif).is_empty());
        assert_eq!(single.total_toggles(), multi.total_toggles());
    }

    #[test]
    fn multi_gpu_builds_schedule_once_for_even_shards() {
        let g = graph();
        // 4 windows/device × 2 devices, duration divisible: even shards,
        // one plan build for the entire multi-GPU run.
        let cfg = SimConfig::small()
            .with_cycle_parallelism(4)
            .with_window_align(100);
        let sim = Session::new(Arc::clone(&g), cfg);
        let stimuli = vec![
            Waveform::from_toggles(false, &[150, 420, 650]),
            Waveform::from_toggles(true, &[310]),
        ];
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 18);
        let _ = sim.run_multi_gpu(&gpus, &stimuli, 800).unwrap();
        let stats = sim.plan_cache_stats();
        assert_eq!(
            stats.misses, 1,
            "one LevelSchedule build shared across both shards"
        );
        // Pre-warm resolves the second shard's plan from cache, then each
        // shard thread re-resolves its (warm) plan at execution time.
        assert_eq!(stats.hits, 3, "every other lookup hits the cache");
    }

    #[test]
    fn multi_gpu_stimulus_mismatch() {
        let g = graph();
        let sim = Session::new(g, SimConfig::small());
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 16);
        assert!(matches!(
            sim.run_multi_gpu(&gpus, &[], 100),
            Err(CoreError::StimulusMismatch { .. })
        ));
    }

    // Shim parity (deprecated `run_multi_gpu` vs `Session::run_multi_gpu`)
    // is covered end-to-end in `tests/session_api.rs`.
}
