//! Multi-GPU re-simulation: the paper's cycle-parallel workload
//! distribution (§5, Fig. 6).
//!
//! With `n` devices, cycle parallelism is set to `32n` and each device
//! independently simulates 32 windows. There is no inter-device
//! communication — the known sequential-element waveforms make windows
//! fully independent — so kernel time follows `t = t₁/n + ovr`.

use gatspi_gpu::{shard_slots, AppPhaseProfile, KernelProfile, MultiGpu};
use gatspi_wave::{SimTime, Waveform};

use crate::engine::Gatspi;
use crate::{CoreError, Result, SimResult};

/// Runs the simulation across `gpus`, sharding windows evenly.
///
/// The merged result reports: modeled kernel time = slowest device (they
/// run concurrently), wall time = measured, SAIF/toggles = exact sums.
/// Waveform extraction is not supported on multi-GPU results.
///
/// # Errors
///
/// As [`Gatspi::run`]; additionally propagates the first per-device error.
pub fn run_multi_gpu(
    sim: &Gatspi,
    gpus: &MultiGpu,
    stimuli: &[Waveform],
    duration: SimTime,
) -> Result<SimResult> {
    let t_app = std::time::Instant::now();
    let n_pis = sim.graph().primary_inputs().len();
    if stimuli.len() != n_pis {
        return Err(CoreError::StimulusMismatch {
            expected: n_pis,
            got: stimuli.len(),
        });
    }
    let slots = sim.config().cycle_parallelism * gpus.len();
    let windows = sim.make_windows(duration, slots);
    let shards = shard_slots(windows.len(), gpus.len());

    let t0 = std::time::Instant::now();
    // Host-side restructuring is shared across devices; use the first
    // device's worker pool as the host thread budget.
    let win_stims = sim.restructure(stimuli, &windows, gpus.device(0).workers());
    let restructure_seconds = t0.elapsed().as_secs_f64();

    // Run each shard on its device concurrently.
    let mut outcomes: Vec<Option<Result<crate::engine::WindowBatch>>> = Vec::new();
    outcomes.resize_with(gpus.len(), || None);
    crossbeam::thread::scope(|s| {
        for (slot, (i, &(start, count))) in outcomes.iter_mut().zip(shards.iter().enumerate()) {
            let windows = &windows[start..start + count];
            let win_stims = &win_stims[start..start + count];
            s.spawn(move |_| {
                if windows.is_empty() {
                    *slot = None;
                    return;
                }
                let device = gpus.device(i);
                device.memory().reset_counters();
                *slot = Some(sim.run_window_batch(device, windows, win_stims));
            });
        }
    })
    .expect("multi-gpu scope panicked");

    // Merge.
    let n_signals = sim.graph().n_signals();
    let mut tc = vec![0u64; n_signals];
    let mut t0_acc = vec![0i64; n_signals];
    let mut t1_acc = vec![0i64; n_signals];
    let mut profile = KernelProfile::empty("multi-resim");
    let mut slowest = 0.0f64;
    let mut launches = 0u64;
    let mut fused_launches = 0u64;
    let mut h2d_bytes = sim.graph().device_bytes() * gpus.len() as u64;
    let mut devices_used = 0usize;
    for o in outcomes.into_iter().flatten() {
        let batch = o?;
        for s in 0..n_signals {
            tc[s] += batch.tc[s];
            t0_acc[s] += batch.t0[s];
            t1_acc[s] += batch.t1[s];
        }
        slowest = slowest.max(batch.kernel_profile.modeled_seconds);
        profile.accumulate(&batch.kernel_profile);
        launches += batch.launches;
        fused_launches += batch.fused_launches;
        devices_used += 1;
    }
    profile.modeled_seconds = slowest;
    for i in 0..gpus.len() {
        h2d_bytes += gpus.device(i).memory().h2d_bytes();
    }

    let (saif, toggle_counts) = sim.assemble_saif(stimuli, duration, &tc, &t0_acc, &t1_acc);
    let spec = gpus.device(0).spec();
    let sync_launch = (launches as f64 / devices_used.max(1) as f64) * spec.launch_overhead;
    let app_profile = AppPhaseProfile {
        h2d_seconds: h2d_bytes as f64 / (spec.pcie_bw * devices_used.max(1) as f64),
        sync_launch_seconds: sync_launch,
        kernel_seconds: (slowest - sync_launch).max(0.0),
        restructure_seconds,
        dump_seconds: 0.0,
        launches,
        fused_launches,
        h2d_bytes,
    };
    Ok(SimResult {
        saif,
        kernel_profile: profile,
        app_profile,
        wall_seconds: t_app.elapsed().as_secs_f64(),
        toggle_counts,
        duration,
        segments: gpus.len(),
        extraction: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use gatspi_gpu::DeviceSpec;
    use gatspi_graph::{CircuitGraph, GraphOptions};
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use std::sync::Arc;

    fn graph() -> Arc<CircuitGraph> {
        let mut b = NetlistBuilder::new("m", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "XOR2", &[a, c], n1).unwrap();
        b.add_gate("u2", "INV", &[n1], y).unwrap();
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    #[test]
    fn multi_gpu_matches_single_device() {
        let g = graph();
        let cfg = SimConfig::small()
            .with_cycle_parallelism(4)
            .with_window_align(100);
        let sim = Gatspi::new(Arc::clone(&g), cfg);
        let stimuli = vec![
            Waveform::from_toggles(false, &[150, 420, 650]),
            Waveform::from_toggles(true, &[310, 890]),
        ];
        let single = sim.run(&stimuli, 1000).unwrap();
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 18);
        let multi = run_multi_gpu(&sim, &gpus, &stimuli, 1000).unwrap();
        assert!(single.saif.diff(&multi.saif).is_empty());
        assert_eq!(single.total_toggles(), multi.total_toggles());
    }

    #[test]
    fn multi_gpu_stimulus_mismatch() {
        let g = graph();
        let sim = Gatspi::new(g, SimConfig::small());
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 16);
        assert!(matches!(
            run_multi_gpu(&sim, &gpus, &[], 100),
            Err(CoreError::StimulusMismatch { .. })
        ));
    }
}
