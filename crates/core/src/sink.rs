//! Pluggable output sinks for streaming runs.
//!
//! A [`Session`](crate::Session) run produces one waveform per (signal,
//! window). The classic API only exposed them *after* the run, and only
//! when everything fit in device memory at once: a segmented run reused the
//! arena, so earlier segments' waveforms were gone by the time
//! `SimResult::waveform` asked for them. Sinks invert that: each finished
//! segment's waveforms are read back from device memory *before* the arena
//! is recycled and streamed to whatever wants them — the built-in host
//! spill (so [`SimResult::waveform`](crate::SimResult::waveform) works for
//! every segment of a segmented run), or a caller-supplied
//! [`WaveformSink`] via
//! [`Session::run_streaming`](crate::Session::run_streaming).

use gatspi_wave::{SimTime, EOW};

/// Identifies one stimulus window within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInfo {
    /// Global window index across the whole run (absolute-time order).
    pub window: usize,
    /// Memory segment this window was simulated in (0-based).
    pub segment: usize,
    /// Window start time (absolute ticks).
    pub start: SimTime,
    /// Window end time (absolute ticks, exclusive).
    pub end: SimTime,
}

/// Receives every finished (signal, window) waveform of a streaming run,
/// segment by segment, before the device arena is recycled.
///
/// `raw` is the Fig. 3 device encoding of the window-local waveform: an
/// optional [`INIT_ONE_MARKER`](gatspi_wave::INIT_ONE_MARKER) (initial
/// value 1), then `0`, then ascending toggle times, terminated by
/// [`EOW`](gatspi_wave::EOW) (slots past the terminator may hold stale
/// transient values — stop at `EOW`). Times are window-local; add
/// `info.start` to re-base. Within one segment, calls arrive in window
/// order and then ascending signal order.
pub trait WaveformSink {
    /// One finished (signal, window) waveform.
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]);
}

/// The built-in host-spill sink: copies every waveform into host memory in
/// the same parity-preserving layout device memory uses, so
/// [`SimResult::waveform`](crate::SimResult::waveform) can stitch
/// full-duration waveforms even after the device arena was reused between
/// segments.
#[derive(Debug, Default)]
pub(crate) struct SpillSink {
    pub n_signals: usize,
    /// Absolute bounds of every window spilled so far, run order.
    pub windows: Vec<(SimTime, SimTime)>,
    /// `ptrs[w * n_signals + s]`: offset of the waveform in `data`, or
    /// `u64::MAX` when absent (floating signal). Host offsets are 64-bit —
    /// unlike the u32-addressed device arena, a long segmented run can
    /// spill past 4 Gi words.
    pub ptrs: Vec<u64>,
    /// Concatenated raw words; every waveform starts at an even offset so
    /// the parity encoding (value = index oddness) survives the copy.
    pub data: Vec<i32>,
}

impl SpillSink {
    pub fn new(n_signals: usize) -> Self {
        SpillSink {
            n_signals,
            ..SpillSink::default()
        }
    }
}

impl WaveformSink for SpillSink {
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
        debug_assert!(signal < self.n_signals);
        if info.window == self.windows.len() {
            self.windows.push((info.start, info.end));
            self.ptrs
                .resize(self.windows.len() * self.n_signals, u64::MAX);
        }
        debug_assert!(info.window < self.windows.len(), "windows arrive in order");
        if self.data.len() % 2 == 1 {
            self.data.push(EOW); // parity pad, never read
        }
        let base = self.data.len() as u64;
        // `raw` is the stored upper bound (count-pass sizing); the live
        // waveform ends at its EOW and any ghost words past it are dead —
        // drop them so the long-lived spill holds only readable words.
        let live = raw
            .iter()
            .position(|&w| w == EOW)
            .map_or(raw, |e| &raw[..=e]);
        self.data.extend_from_slice(live);
        self.ptrs[info.window * self.n_signals + signal] = base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_wave::INIT_ONE_MARKER;

    #[test]
    fn spill_preserves_parity_and_order() {
        let mut sink = SpillSink::new(2);
        let w0 = WindowInfo {
            window: 0,
            segment: 0,
            start: 0,
            end: 100,
        };
        // 3-word waveform forces a parity pad before the next one.
        sink.waveform(0, &w0, &[0, 10, EOW]);
        sink.waveform(1, &w0, &[INIT_ONE_MARKER, 0, 20, EOW]);
        let w1 = WindowInfo {
            window: 1,
            segment: 1,
            start: 100,
            end: 200,
        };
        sink.waveform(0, &w1, &[0, EOW]);
        assert_eq!(sink.windows, vec![(0, 100), (100, 200)]);
        for w in 0..2 {
            for s in 0..2 {
                let p = sink.ptrs[w * 2 + s];
                if p != u64::MAX {
                    assert_eq!(p % 2, 0, "every spilled base stays even");
                }
            }
        }
        // Window 1, signal 1 was never produced.
        assert_eq!(sink.ptrs[3], u64::MAX);
        // Window 0, signal 1 round-trips bit-exactly.
        let p = sink.ptrs[1] as usize;
        assert_eq!(&sink.data[p..p + 4], &[INIT_ONE_MARKER, 0, 20, EOW]);
    }
}
