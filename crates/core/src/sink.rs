//! Pluggable output sinks for streaming runs.
//!
//! A [`Session`](crate::Session) run produces one waveform per (signal,
//! window). The classic API only exposed them *after* the run, and only
//! when everything fit in device memory at once: a segmented run reused the
//! arena, so earlier segments' waveforms were gone by the time
//! `SimResult::waveform` asked for them. Sinks invert that: each finished
//! segment's waveforms are read back from device memory *before* the arena
//! is recycled and streamed to whatever wants them — the built-in host
//! spill (so [`SimResult::waveform`](crate::SimResult::waveform) works for
//! every segment of a segmented run), a caller-supplied
//! [`WaveformSink`] via
//! [`Session::run_streaming`](crate::Session::run_streaming), or the
//! ready-made format sinks [`VcdSink`] and [`SaifSink`], which turn the
//! stream into industry-standard output files with memory bounded per
//! window — a million-signal run never materialises all its waveforms.
//!
//! # The raw device-word contract
//!
//! Every delivery hands the sink the Fig. 3 *device encoding* of one
//! window-local waveform, exactly as stored in the arena:
//!
//! * an optional leading
//!   [`INIT_ONE_MARKER`](gatspi_wave::INIT_ONE_MARKER) (`-1`) when the
//!   initial value is 1, shifting the next entry to odd index parity
//!   (decoded by the shared [`gatspi_wave::split_raw`]);
//! * a mandatory `0` entry establishing the initial value (value after
//!   the entry at slice index `k` is `k % 2` — the slice starts at the
//!   waveform's even-aligned arena base, so in-slice parity equals arena
//!   parity);
//! * strictly ascending toggle times, **window-local** (add
//!   [`WindowInfo::start`] to re-base) and possibly spilling past the
//!   window end (consumers must clip to `[0, end - start)`);
//! * an [`EOW`] terminator. Slots past it may hold stale transient values
//!   from the count/store passes — always stop at `EOW`.
//!
//! # Window-join semantics
//!
//! Windows cut one continuous simulation, so the value a window opens on
//! (its initial value) always equals the value the previous window closed
//! on. Format sinks must therefore *stitch* joins rather than re-emit
//! state: [`VcdSink`] writes a change at a window start only when the
//! value genuinely differs from the last one written (never, for
//! well-formed producers, except the time-0 initial dump), and
//! [`SaifSink`] folds per-window durations/toggle deltas that sum exactly
//! to the whole-run record. Within one segment, deliveries arrive in
//! window order and then ascending signal order; across segments (and
//! across multi-GPU shards, which drain in device order) window starts
//! ascend, which is all the format sinks rely on.

use std::io;
use std::sync::Arc;

use gatspi_wave::saif::{SaifAccumulator, SaifDocument};
use gatspi_wave::vcd::StreamWriter;
use gatspi_wave::{SimTime, EOW};

/// Identifies one stimulus window within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInfo {
    /// Global window index across the whole run (absolute-time order).
    pub window: usize,
    /// Memory segment this window was simulated in (0-based).
    pub segment: usize,
    /// Window start time (absolute ticks).
    pub start: SimTime,
    /// Window end time (absolute ticks, exclusive).
    pub end: SimTime,
}

/// Receives every finished (signal, window) waveform of a streaming run,
/// segment by segment, before the device arena is recycled.
///
/// `raw` is the Fig. 3 device encoding of the window-local waveform: an
/// optional [`INIT_ONE_MARKER`](gatspi_wave::INIT_ONE_MARKER) (initial
/// value 1), then `0`, then ascending toggle times, terminated by
/// [`EOW`](gatspi_wave::EOW) (slots past the terminator may hold stale
/// transient values — stop at `EOW`). Times are window-local; add
/// `info.start` to re-base. Within one segment, calls arrive in window
/// order and then ascending signal order.
pub trait WaveformSink {
    /// One finished (signal, window) waveform.
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]);
}

/// Bits of a spill pointer holding the in-chunk word offset; the chunk
/// index lives above them. 2^40 words = 4 TiB per chunk — far beyond any
/// single run's spill — leaving 2^23 chunks for incremental derivation
/// chains.
const SPILL_OFFSET_BITS: u32 = 40;
const SPILL_OFFSET_MASK: u64 = (1 << SPILL_OFFSET_BITS) - 1;

/// The built-in host-spill sink: copies every waveform into host memory in
/// the same parity-preserving layout device memory uses, so
/// [`SimResult::waveform`](crate::SimResult::waveform) can stitch
/// full-duration waveforms even after the device arena was reused between
/// segments.
///
/// Storage is *chunked*: each run appends into an open tail chunk which
/// [`SpillSink::seal`] freezes into a shared read-only `Arc<Vec<i32>>`. An
/// incremental run derives its sink from the previous result with
/// [`SpillSink::derived`] — it Arc-clones the frozen chunks and the
/// pointer table, then overwrites only the recomputed cone signals' slots
/// with pointers into its own tail chunk. Out-of-cone waveforms are thus
/// reused *pointer-identically* (the same heap allocation, not a copy) —
/// the host-side mirror of reusing live device allocations as boundary
/// stimulus.
#[derive(Debug, Default)]
pub(crate) struct SpillSink {
    pub n_signals: usize,
    /// Absolute bounds of every window spilled so far, run order.
    pub windows: Vec<(SimTime, SimTime)>,
    /// `ptrs[w * n_signals + s]`: encoded chunk/offset of the waveform
    /// (chunk index above [`SPILL_OFFSET_BITS`], even word offset below),
    /// or `u64::MAX` when absent (floating signal).
    pub ptrs: Vec<u64>,
    /// Frozen chunks, oldest first; shared with derived results.
    pub chunks: Vec<Arc<Vec<i32>>>,
    /// Open tail chunk receiving this run's deliveries; sealed into
    /// `chunks` (index `chunks.len()` at delivery time) when the run ends.
    tail: Vec<i32>,
}

impl SpillSink {
    pub fn new(n_signals: usize) -> Self {
        SpillSink {
            n_signals,
            ..SpillSink::default()
        }
    }

    /// A sink seeded with a previous (sealed) result's spill: same window
    /// table, shared frozen chunks, and every pointer carried over. Only
    /// subsequently delivered (recomputed) waveforms land in the new tail
    /// chunk; everything else stays pointer-identical to `prev`.
    pub fn derived(prev: &SpillSink) -> Self {
        debug_assert!(prev.tail.is_empty(), "derive from a sealed spill");
        SpillSink {
            n_signals: prev.n_signals,
            windows: prev.windows.clone(),
            ptrs: prev.ptrs.clone(),
            chunks: prev.chunks.clone(),
            tail: Vec::new(),
        }
    }

    /// Freezes the open tail chunk. Must be called before the sink backs a
    /// [`SimResult`](crate::SimResult); idempotent when nothing arrived.
    pub fn seal(&mut self) {
        if !self.tail.is_empty() {
            self.chunks.push(Arc::new(std::mem::take(&mut self.tail)));
        }
    }

    /// The stored words of the waveform at encoded pointer `ptr`, from its
    /// base to the end of its chunk (readers stop at the waveform's EOW).
    pub fn slice_from(&self, ptr: u64) -> &[i32] {
        let chunk = &self.chunks[(ptr >> SPILL_OFFSET_BITS) as usize];
        &chunk[(ptr & SPILL_OFFSET_MASK) as usize..]
    }

    /// One stored word at encoded pointer `ptr`. Adding `k` to an encoded
    /// pointer advances `k` words within its chunk (the chunk index lives
    /// above [`SPILL_OFFSET_BITS`], and no chunk grows near that bound), so
    /// sequential readers can use plain pointer arithmetic — and the
    /// offset's low bit keeps the parity encoding of values by word index.
    pub fn word(&self, ptr: u64) -> i32 {
        self.chunks[(ptr >> SPILL_OFFSET_BITS) as usize][(ptr & SPILL_OFFSET_MASK) as usize]
    }
}

impl WaveformSink for SpillSink {
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
        debug_assert!(signal < self.n_signals);
        // Grow to cover *any* arriving window index, not just the next
        // one: a merge path delivering windows out of order or with a gap
        // must widen the tables rather than misindex `ptrs` (a gapped
        // window stays `(0, 0)`/`u64::MAX` — absent, like a floating
        // signal — instead of silently corrupting a neighbour's slot).
        if info.window >= self.windows.len() {
            self.windows.resize(info.window + 1, (0, 0));
            self.ptrs
                .resize(self.windows.len() * self.n_signals, u64::MAX);
        }
        self.windows[info.window] = (info.start, info.end);
        if self.tail.len() % 2 == 1 {
            self.tail.push(EOW); // parity pad, never read
        }
        let base = (self.chunks.len() as u64) << SPILL_OFFSET_BITS | self.tail.len() as u64;
        // `raw` is the stored upper bound (count-pass sizing); the live
        // waveform ends at its EOW and any ghost words past it are dead —
        // drop them so the long-lived spill holds only readable words.
        let live = raw
            .iter()
            .position(|&w| w == EOW)
            .map_or(raw, |e| &raw[..=e]);
        self.tail.extend_from_slice(live);
        self.ptrs[info.window * self.n_signals + signal] = base;
    }
}

/// Streams a run into VCD as it simulates: decodes each raw device
/// window, clips spillover toggles at the window end, and hands the
/// changes to a [`StreamWriter`] — which merges them time-ordered per
/// window and stitches values across window joins. Peak memory is one
/// window's changes ([`VcdSink::peak_window_changes`]), regardless of run
/// length or segment count.
///
/// Writer errors cannot surface through the infallible [`WaveformSink`]
/// trait mid-run; the sink latches the first error, ignores further
/// deliveries, and reports it from [`VcdSink::finish`].
#[derive(Debug)]
pub struct VcdSink<W: io::Write> {
    writer: StreamWriter<W>,
    /// Signal → stream index, `u32::MAX` for signals not written.
    map: Vec<u32>,
    err: Option<io::Error>,
}

impl<W: io::Write> VcdSink<W> {
    /// A sink writing every signal: `names[s]` names signal `s`. Writes
    /// the (deterministic) header immediately.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn new(out: W, design: &str, names: &[&str]) -> io::Result<Self> {
        Self::with_timescale(out, design, names, gatspi_wave::vcd::DEFAULT_TIMESCALE)
    }

    /// [`VcdSink::new`] with an explicit `$timescale` unit.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn with_timescale(
        out: W,
        design: &str,
        names: &[&str],
        timescale: &str,
    ) -> io::Result<Self> {
        let writer = StreamWriter::with_timescale(out, design, names, timescale)?;
        Ok(VcdSink {
            writer,
            map: (0..names.len() as u32).collect(),
            err: None,
        })
    }

    /// A sink writing only the listed `(signal, name)` pairs — e.g. just
    /// the primary outputs of a design with `n_signals` signals total.
    /// Other signals' deliveries are skipped without decoding.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn filtered(
        out: W,
        design: &str,
        n_signals: usize,
        signals: &[(usize, &str)],
        timescale: &str,
    ) -> io::Result<Self> {
        let names: Vec<&str> = signals.iter().map(|&(_, n)| n).collect();
        let writer = StreamWriter::with_timescale(out, design, &names, timescale)?;
        let mut map = vec![u32::MAX; n_signals];
        for (k, &(s, _)) in signals.iter().enumerate() {
            map[s] = k as u32;
        }
        Ok(VcdSink {
            writer,
            map,
            err: None,
        })
    }

    /// Largest number of changes buffered for any one window (see
    /// [`StreamWriter::peak_window_changes`]).
    pub fn peak_window_changes(&self) -> usize {
        self.writer.peak_window_changes()
    }

    /// Flushes the final window and returns the writer.
    ///
    /// # Errors
    ///
    /// The first error the writer raised — during the run or in this
    /// final flush.
    pub fn finish(self) -> io::Result<W> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.writer.finish()
    }
}

impl<W: io::Write> WaveformSink for VcdSink<W> {
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
        // A signal beyond the constructed name table (a `new` call with a
        // partial name list) is skipped like a filtered-out one, instead
        // of panicking mid-run deep inside the engine.
        let idx = self.map.get(signal).copied().unwrap_or(u32::MAX);
        if idx == u32::MAX || self.err.is_some() {
            return;
        }
        let (initial, tail) = gatspi_wave::split_raw(raw);
        let wlen = info.end - info.start;
        let toggles = tail.iter().copied().take_while(|&t| t != EOW && t < wlen);
        if let Err(e) = self.writer.wave(idx as usize, info.start, initial, toggles) {
            self.err = Some(e);
        }
    }
}

/// Streams a run into SAIF: folds each raw device window's
/// `T0`/`T1`/`TC` deltas into a [`SaifAccumulator`] — per-segment deltas,
/// never whole waveforms — and finalises into a [`SaifDocument`]. Memory
/// is O(nets), independent of run length; signals that never arrive
/// (floating) are omitted, mirroring
/// [`SimResult::saif`](crate::SimResult::saif).
#[derive(Debug, Clone)]
pub struct SaifSink {
    acc: SaifAccumulator,
}

impl SaifSink {
    /// A sink accumulating every signal: `names[s]` names signal `s`.
    pub fn new(design: &str, names: Vec<String>) -> Self {
        SaifSink {
            acc: SaifAccumulator::new(design, names),
        }
    }

    /// Finalises into a document covering `[0, duration)`.
    pub fn finish(self, duration: SimTime) -> SaifDocument {
        self.acc.finish(duration)
    }
}

impl WaveformSink for SaifSink {
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
        self.acc.add_raw(signal, raw, info.end - info.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_wave::INIT_ONE_MARKER;

    #[test]
    fn spill_preserves_parity_and_order() {
        let mut sink = SpillSink::new(2);
        let w0 = WindowInfo {
            window: 0,
            segment: 0,
            start: 0,
            end: 100,
        };
        // 3-word waveform forces a parity pad before the next one.
        sink.waveform(0, &w0, &[0, 10, EOW]);
        sink.waveform(1, &w0, &[INIT_ONE_MARKER, 0, 20, EOW]);
        let w1 = WindowInfo {
            window: 1,
            segment: 1,
            start: 100,
            end: 200,
        };
        sink.waveform(0, &w1, &[0, EOW]);
        sink.seal();
        assert_eq!(sink.windows, vec![(0, 100), (100, 200)]);
        for w in 0..2 {
            for s in 0..2 {
                let p = sink.ptrs[w * 2 + s];
                if p != u64::MAX {
                    assert_eq!(p % 2, 0, "every spilled base stays even");
                }
            }
        }
        // Window 1, signal 1 was never produced.
        assert_eq!(sink.ptrs[3], u64::MAX);
        // Window 0, signal 1 round-trips bit-exactly.
        assert_eq!(
            &sink.slice_from(sink.ptrs[1])[..4],
            &[INIT_ONE_MARKER, 0, 20, EOW]
        );
    }

    #[test]
    fn derived_spill_shares_chunks_and_overwrites_selectively() {
        let mut base = SpillSink::new(2);
        let w0 = WindowInfo {
            window: 0,
            segment: 0,
            start: 0,
            end: 100,
        };
        base.waveform(0, &w0, &[0, 10, EOW]);
        base.waveform(1, &w0, &[0, 20, EOW]);
        base.seal();
        let mut derived = SpillSink::derived(&base);
        // Recompute only signal 1; signal 0 must stay pointer-identical.
        derived.waveform(1, &w0, &[0, 25, EOW]);
        derived.seal();
        assert_eq!(derived.ptrs[0], base.ptrs[0]);
        assert!(
            Arc::ptr_eq(&derived.chunks[0], &base.chunks[0]),
            "untouched chunk is shared, not copied"
        );
        assert_eq!(&derived.slice_from(derived.ptrs[0])[..3], &[0, 10, EOW]);
        assert_ne!(derived.ptrs[1], base.ptrs[1]);
        assert_eq!(&derived.slice_from(derived.ptrs[1])[..3], &[0, 25, EOW]);
        assert_eq!(&base.slice_from(base.ptrs[1])[..3], &[0, 20, EOW]);
        assert_eq!(derived.chunks.len(), 2);
    }

    #[test]
    fn spill_grows_over_gaps_and_out_of_order_windows() {
        let mut sink = SpillSink::new(2);
        // Window 2 arrives first (a merge path could deliver shards out
        // of order); windows 0..=1 must appear as absent, not corrupt.
        let w2 = WindowInfo {
            window: 2,
            segment: 1,
            start: 200,
            end: 300,
        };
        sink.waveform(1, &w2, &[0, 210, EOW]);
        assert_eq!(sink.windows.len(), 3);
        assert_eq!(sink.ptrs.len(), 6);
        assert_eq!(sink.windows[2], (200, 300));
        assert_eq!(&sink.ptrs[..5], &[u64::MAX; 5]);
        let p = sink.ptrs[2 * 2 + 1];
        // Window 0 arriving late lands in its own slot.
        let w0 = WindowInfo {
            window: 0,
            segment: 0,
            start: 0,
            end: 100,
        };
        sink.waveform(0, &w0, &[0, EOW]);
        sink.seal();
        assert_eq!(&sink.slice_from(p)[..3], &[0, 210, EOW]);
        assert_eq!(sink.windows[0], (0, 100));
        assert_ne!(sink.ptrs[0], u64::MAX);
        assert_eq!(sink.ptrs[2 * 2 + 1], p, "window 2 untouched");
    }

    #[test]
    fn vcd_sink_clips_rebases_and_stitches() {
        let names = ["a", "b"];
        let mut sink = VcdSink::new(Vec::new(), "top", &names).unwrap();
        let w0 = WindowInfo {
            window: 0,
            segment: 0,
            start: 0,
            end: 100,
        };
        // `a` starts high, falls at 40; a spillover toggle at 120 and a
        // ghost word past EOW must both be ignored.
        sink.waveform(0, &w0, &[INIT_ONE_MARKER, 0, 40, 120, EOW, 7]);
        sink.waveform(1, &w0, &[0, EOW]);
        let w1 = WindowInfo {
            window: 1,
            segment: 0,
            start: 100,
            end: 200,
        };
        // Window 1 of `a` opens at 0 (the 40-toggle's value): no join
        // change; its toggle at local 30 lands at absolute 130.
        sink.waveform(0, &w1, &[0, 30, EOW]);
        sink.waveform(1, &w1, &[0, EOW]);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let doc = gatspi_wave::vcd::parse(&text).unwrap();
        assert_eq!(
            doc.signals["a"],
            gatspi_wave::Waveform::from_toggles(true, &[40, 130])
        );
        assert_eq!(doc.signals["b"], gatspi_wave::Waveform::constant(false));
    }

    #[test]
    fn filtered_vcd_sink_writes_subset_only() {
        let mut sink = VcdSink::filtered(Vec::new(), "top", 3, &[(2, "out")], "1ns").unwrap();
        let w0 = WindowInfo {
            window: 0,
            segment: 0,
            start: 0,
            end: 50,
        };
        sink.waveform(0, &w0, &[0, 5, EOW]);
        sink.waveform(2, &w0, &[0, 9, EOW]);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(text.contains("$timescale 1ns $end"));
        let doc = gatspi_wave::vcd::parse(&text).unwrap();
        assert_eq!(doc.signals.len(), 1);
        assert_eq!(
            doc.signals["out"],
            gatspi_wave::Waveform::from_toggles(false, &[9])
        );
    }

    #[test]
    fn vcd_sink_latches_writer_errors_until_finish() {
        /// Fails every write after the header.
        struct Failing {
            writes: usize,
        }
        impl io::Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.writes += 1;
                if self.writes > 1 {
                    Err(io::Error::other("disk full"))
                } else {
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = VcdSink::new(Failing { writes: 0 }, "top", &["a"]).unwrap();
        let mk = |window, start, end| WindowInfo {
            window,
            segment: 0,
            start,
            end,
        };
        // First window buffers fine; the second's flush hits the error,
        // which must surface from finish() rather than vanish.
        sink.waveform(0, &mk(0, 0, 10), &[0, 5, EOW]);
        sink.waveform(0, &mk(1, 10, 20), &[0, 5, EOW]);
        assert!(sink.finish().is_err());
    }

    #[test]
    fn saif_sink_matches_whole_run_document() {
        let a = gatspi_wave::Waveform::from_toggles(false, &[10, 130]);
        let mut sink = SaifSink::new("top", vec!["a".into(), "quiet".into()]);
        for (w, (start, end)) in [(0, (0, 100)), (1, (100, 200))] {
            let info = WindowInfo {
                window: w,
                segment: 0,
                start,
                end,
            };
            sink.waveform(0, &info, a.window(start, end).raw());
        }
        let doc = sink.finish(200);
        assert_eq!(
            doc,
            gatspi_wave::saif::SaifDocument::from_waveforms("top", 200, [("a", &a)])
        );
    }
}
