use std::fmt;

/// Errors produced by the GATSPI engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Stimulus waveform count does not match the graph's primary inputs.
    StimulusMismatch {
        /// Primary inputs the graph declares.
        expected: usize,
        /// Waveforms supplied.
        got: usize,
    },
    /// The device waveform arena cannot hold the simulation even at one
    /// window per segment. Grow `SimConfig::memory_words`.
    OutOfMemory {
        /// Words requested at the point of failure.
        requested: usize,
        /// Arena capacity in words.
        capacity: usize,
    },
    /// Waveform extraction was requested but the run was segmented (earlier
    /// segments' device memory has been reused).
    Segmented {
        /// Number of sequential segments the run used.
        segments: usize,
    },
    /// Waveform extraction was requested from a device-backed result after
    /// a later run recycled the device arena. Enable
    /// `RunOptions::spill_waveforms` for results that must outlive later
    /// runs, or extract before re-running.
    StaleExtraction,
    /// A requested signal does not exist.
    NoSuchSignal {
        /// The offending index.
        index: usize,
    },
    /// Invalid configuration.
    BadConfig {
        /// Human-readable detail.
        detail: String,
    },
    /// A streaming output sink failed to write (the wrapped
    /// `std::io::Error`, stringified — `CoreError` stays `Clone`).
    Io {
        /// Human-readable detail from the underlying I/O error.
        detail: String,
    },
    /// An incremental run's inputs don't satisfy its preconditions: the
    /// previous result must carry a host waveform spill
    /// (`RunOptions::spill_waveforms`), come from a topology-identical
    /// graph, and the changed-gate indices must be in range.
    BadIncremental {
        /// Human-readable detail.
        detail: String,
    },
    /// A device fault (injected or real) survived the configured
    /// `RetryPolicy`: a launch failed, an allocation or transfer errored,
    /// or a worker thread servicing the device panicked. The fault was
    /// isolated at the segment boundary — the `Session` stays usable.
    DeviceFault {
        /// Index of the faulted device in its fleet (0 for single-device
        /// runs).
        device: usize,
        /// What failed on the device.
        kind: gatspi_gpu::FaultKind,
        /// `true` if the fault was transient (the run failed only because
        /// retry attempts were exhausted); `false` if the device is
        /// permanently gone.
        retryable: bool,
    },
    /// A streaming output consumer (e.g. the SAIF scan) died mid-run: the
    /// run fails with this error instead of unwinding the process.
    SinkClosed {
        /// Human-readable detail.
        detail: String,
    },
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io {
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::StimulusMismatch { expected, got } => {
                write!(f, "expected {expected} stimulus waveforms, got {got}")
            }
            CoreError::OutOfMemory {
                requested,
                capacity,
            } => write!(
                f,
                "device arena exhausted: needed {requested} words of {capacity}"
            ),
            CoreError::Segmented { segments } => write!(
                f,
                "waveforms unavailable: run was split into {segments} memory segments"
            ),
            CoreError::StaleExtraction => write!(
                f,
                "waveforms unavailable: a later run recycled the device arena \
                 (use RunOptions::spill_waveforms for durable results)"
            ),
            CoreError::NoSuchSignal { index } => write!(f, "no signal with index {index}"),
            CoreError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            CoreError::Io { detail } => write!(f, "streaming sink I/O failed: {detail}"),
            CoreError::BadIncremental { detail } => {
                write!(f, "incremental run precondition failed: {detail}")
            }
            CoreError::DeviceFault {
                device,
                kind,
                retryable,
            } => write!(
                f,
                "device {device} {kind} fault ({})",
                if *retryable {
                    "transient; retries exhausted"
                } else {
                    "permanent"
                }
            ),
            CoreError::SinkClosed { detail } => {
                write!(f, "streaming output consumer died: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::OutOfMemory {
            requested: 100,
            capacity: 10,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
