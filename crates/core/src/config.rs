use gatspi_gpu::DeviceSpec;
use gatspi_wave::SimTime;

/// Functional feature switches, used for the paper's Table 7 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimFeatures {
    /// Inertial pulse filtering on interconnect (Algorithm 1 lines 11–12).
    /// Disabling reproduces the "No Net Delay" column of Table 7.
    pub net_delay_filtering: bool,
    /// Full conditional-SDF lookup (Fig. 4 2-D arrays). Disabling collapses
    /// every arc to its average rise/fall pair — the "No Full SDF" column.
    pub full_sdf: bool,
}

impl Default for SimFeatures {
    fn default() -> Self {
        SimFeatures {
            net_delay_filtering: true,
            full_sdf: true,
        }
    }
}

/// Output-allocation strategy for the store pass — whether the engine runs
/// the paper's Fig. 5 "simulate twice" schedule or a speculative single
/// pass with exact repair.
///
/// * [`Speculation::Off`] — every `(gate, window)` runs the kernel twice:
///   a count pass sizes the output, a prefix sum assigns arena offsets,
///   and a store pass writes. Always correct, never repairs, ~2× kernel
///   work. This is the reference the equivalence suite pins against.
/// * [`Speculation::On`] — a single speculative pass writes each output
///   into a budget predicted from the plan's per-gate extent history
///   (first-touch gates use the sound static bound Σ published input
///   lengths, so a first run never overflows). Gates whose true size
///   exceeds their reservation degrade to counting and are re-run by a
///   narrow exact count+store repair launch after the level — results are
///   bit-identical to `Off` by construction, whatever the hit rate.
/// * [`Speculation::Auto`] (default) — `On`, but the session monitors the
///   observed overflow rate and permanently falls back to two-pass for the
///   rest of the session once more than ~5% of a meaningful sample of
///   speculative threads overflowed — workloads whose window-to-window
///   activity varies too much to predict pay for mispredicted budgets
///   (wasted arena words + repair launches) without saving kernel work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Speculation {
    /// Always two-pass (count + store) — the paper's Fig. 5 schedule.
    Off,
    /// Always speculative single-pass with exact repair.
    On,
    /// Speculative until the observed overflow rate exceeds the threshold,
    /// then two-pass for the rest of the session.
    #[default]
    Auto,
}

/// Bounded-retry policy for transient device faults.
///
/// When a segment's execution dies with a *transient* fault
/// (`CoreError::DeviceFault { retryable: true }` — an injected or real
/// launch/allocation/readback error), the session re-executes **only that
/// segment**, up to [`max_attempts`](RetryPolicy::max_attempts) total
/// attempts, sleeping an exponentially growing backoff between attempts.
/// Because every segment's outputs are delivered to sinks only after the
/// segment fully succeeds (readback included), a retried run's streamed and
/// post-hoc outputs are bit-identical to a fault-free run.
///
/// The attempt `k` (1-based retry index) backoff is
/// `backoff_base * backoff_factor^(k-1)`, capped at `backoff_cap`, in
/// seconds. Total time spent sleeping is reported as
/// `AppPhaseProfile::backoff_seconds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per segment (first try included). `1` disables
    /// retries; `0` is treated as `1`. Default 3.
    pub max_attempts: u32,
    /// First retry's backoff in seconds. Default 1 ms.
    pub backoff_base: f64,
    /// Multiplier applied per further retry. Default 2.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff sleep in seconds. Default 100 ms.
    pub backoff_cap: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: 0.001,
            backoff_factor: 2.0,
            backoff_cap: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (fail on the first fault).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before 1-based retry `attempt`, in seconds.
    pub fn delay_seconds(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(62);
        (self.backoff_base * self.backoff_factor.powi(exp as i32))
            .clamp(0.0, self.backoff_cap.max(0.0))
    }
}

/// GATSPI engine configuration.
///
/// The three GPU "hyperparameters" the paper tunes (§5) are
/// [`cycle_parallelism`](SimConfig::cycle_parallelism),
/// [`threads_per_block`](SimConfig::threads_per_block) and
/// [`regs_per_thread`](SimConfig::regs_per_thread); the paper's chosen
/// configuration {32, 512, 64} is the default.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated device (Table 1 preset). Default: V100, the paper's
    /// primary platform.
    pub device: DeviceSpec,
    /// Device waveform-arena capacity in `i32` words. The paper allocates
    /// 24 GB on a 32 GB V100; scaled default here is 64 Mi words (256 MB).
    pub memory_words: usize,
    /// Independent stimulus windows simulated in parallel (default 32 — one
    /// warp per gate).
    pub cycle_parallelism: usize,
    /// CUDA threads per block (default 512).
    pub threads_per_block: u32,
    /// Registers per thread (default 64; the paper shows 32 causes spills).
    pub regs_per_thread: u32,
    /// Feature switches for ablation studies.
    pub features: SimFeatures,
    /// `PATHPULSEPERCENT` as a percentage of the gate delay (default 100:
    /// pulses narrower than the full delay are filtered).
    pub path_pulse_percent: u32,
    /// Window boundaries are aligned to multiples of this many ticks
    /// (set it to the testbench clock period so windows cut at cycle
    /// boundaries where combinational logic has settled). Default 1.
    pub window_align: SimTime,
    /// Launch fusion threshold: consecutive levels whose *combined* thread
    /// count (gates × windows) does not exceed this execute inside a single
    /// phased kernel launch, paying one launch overhead instead of two per
    /// level — the win on deep, narrow designs where launch overhead
    /// dominates per-level kernel time. `0` disables fusion (the paper's
    /// original two-launches-per-level schedule). Default 4096.
    pub fuse_threshold: usize,
    /// Publish-pipeline depth. `2` (default) lets a ticketed level `L`'s
    /// host publish work (per-signal length accounting and SAIF dump
    /// enqueueing) overlap later levels' phases **inside a fused launch**
    /// — every group level owns a disjoint slab range of the scratch
    /// column, so any number of a group's publishes may be in flight; an
    /// epoch fence at every launch-group boundary waits for outstanding
    /// publishes before the next group's working-set sums feed the L2
    /// model and the column is reused. On the classic two-launch path
    /// each wide level is its own group, so that fence lands immediately
    /// after the ticket — wide levels gain *parallel* publish (fanned out
    /// across host workers, overlapping only the SAIF scanner), not
    /// cross-launch overlap. `1` forces the fully serial pipeline (every
    /// publish completes before the engine proceeds) — bit-identical
    /// results; used by equivalence tests and as the bench baseline.
    /// Values clamp to `1..=2`.
    pub pipeline_depth: usize,
    /// Upper bound on cached `(windows, fuse_threshold)` launch plans per
    /// session; least-recently-used plans are evicted beyond it (plans for
    /// odd tail-segment sizes are rarely reused). `0` means unbounded.
    /// Default 16.
    pub plan_cache_cap: usize,
    /// Output-allocation strategy: the paper's two-pass "simulate twice"
    /// schedule ([`Speculation::Off`]) or speculative single-pass with
    /// exact repair ([`Speculation::On`] / [`Speculation::Auto`]). Both
    /// produce bit-identical waveforms and SAIF; speculation trades the
    /// unconditional second kernel pass for occasional narrow repair
    /// launches plus some predicted-budget slack in the arena. Default
    /// [`Speculation::Auto`].
    pub speculation: Speculation,
    /// Bounded retry with exponential backoff for transient device faults;
    /// see [`RetryPolicy`]. Default: 3 attempts, 1 ms base, ×2 per retry.
    pub retry: RetryPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            device: DeviceSpec::v100(),
            memory_words: 64 << 20,
            cycle_parallelism: 32,
            threads_per_block: 512,
            regs_per_thread: 64,
            features: SimFeatures::default(),
            path_pulse_percent: 100,
            window_align: 1,
            fuse_threshold: 4096,
            pipeline_depth: 2,
            plan_cache_cap: 16,
            speculation: Speculation::default(),
            retry: RetryPolicy::default(),
        }
    }
}

impl SimConfig {
    /// A configuration sized for unit tests: small arena, exact semantics.
    pub fn small() -> Self {
        SimConfig {
            memory_words: 1 << 20,
            ..SimConfig::default()
        }
    }

    /// Sets cycle parallelism (builder style).
    pub fn with_cycle_parallelism(mut self, p: usize) -> Self {
        self.cycle_parallelism = p.max(1);
        self
    }

    /// Sets the window alignment (builder style).
    pub fn with_window_align(mut self, align: SimTime) -> Self {
        self.window_align = align.max(1);
        self
    }

    /// Sets the device spec (builder style).
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Sets the launch-fusion threshold (builder style); `0` disables
    /// fusion.
    pub fn with_fuse_threshold(mut self, threshold: usize) -> Self {
        self.fuse_threshold = threshold;
        self
    }

    /// Sets the publish-pipeline depth (builder style): `1` forces the
    /// serial publish path, `2` (default) overlaps publish with the next
    /// level's launches. Clamped to `1..=2`.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.clamp(1, 2);
        self
    }

    /// Sets the plan-cache capacity (builder style); `0` means unbounded.
    pub fn with_plan_cache_cap(mut self, cap: usize) -> Self {
        self.plan_cache_cap = cap;
        self
    }

    /// Sets the output-allocation strategy (builder style); see
    /// [`Speculation`].
    pub fn with_speculation(mut self, speculation: Speculation) -> Self {
        self.speculation = speculation;
        self
    }

    /// Sets the transient-fault retry policy (builder style); see
    /// [`RetryPolicy`].
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tuning() {
        let c = SimConfig::default();
        assert_eq!(c.cycle_parallelism, 32);
        assert_eq!(c.threads_per_block, 512);
        assert_eq!(c.regs_per_thread, 64);
        assert_eq!(c.path_pulse_percent, 100);
        assert!(c.features.net_delay_filtering);
        assert!(c.features.full_sdf);
        assert_eq!(c.device.name, "V100");
        assert_eq!(c.pipeline_depth, 2);
        assert_eq!(c.plan_cache_cap, 16);
        assert_eq!(c.speculation, Speculation::Auto);
        assert_eq!(SimConfig::small().speculation, Speculation::Auto);
        assert_eq!(c.retry, RetryPolicy::default());
        assert_eq!(c.retry.max_attempts, 3);
    }

    #[test]
    fn retry_backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_seconds(1), 0.001);
        assert_eq!(p.delay_seconds(2), 0.002);
        assert_eq!(p.delay_seconds(3), 0.004);
        assert_eq!(p.delay_seconds(30), 0.1, "capped at backoff_cap");
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn pipeline_depth_clamps() {
        assert_eq!(
            SimConfig::default().with_pipeline_depth(0).pipeline_depth,
            1
        );
        assert_eq!(
            SimConfig::default().with_pipeline_depth(9).pipeline_depth,
            2
        );
    }

    #[test]
    fn builder_clamps() {
        let c = SimConfig::default()
            .with_cycle_parallelism(0)
            .with_window_align(0);
        assert_eq!(c.cycle_parallelism, 1);
        assert_eq!(c.window_align, 1);
    }
}
