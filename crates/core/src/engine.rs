//! Deprecated one-shot facade over the compiled-session API.
//!
//! [`Gatspi`] was the original entry point: `Gatspi::new(graph, config)`
//! followed by [`Gatspi::run`], which fused preparation and execution into
//! one shot — every call rebuilt the launch schedule. The engine now lives
//! in [`Session`], which caches schedules across runs and segments; this
//! module keeps thin shims so existing callers compile unchanged and
//! produce bit-identical results while they migrate.

use std::sync::Arc;

use gatspi_gpu::Device;
use gatspi_graph::CircuitGraph;
use gatspi_wave::{SimTime, Waveform};

use crate::session::Session;
use crate::{Result, SimConfig, SimResult};

/// Deprecated one-shot facade over [`Session`] (the Fig. 5 re-simulator's
/// original API). Each instance owns a session, so repeated `run` calls
/// already benefit from the plan cache — but new code should construct a
/// [`Session`] directly and use [`RunOptions`](crate::RunOptions) for
/// spill/streaming control.
#[derive(Debug)]
pub struct Gatspi {
    session: Session,
}

impl Gatspi {
    /// Creates a simulator for `graph`, allocating the configured device.
    pub fn new(graph: Arc<CircuitGraph>, config: SimConfig) -> Self {
        Gatspi {
            session: Session::new(graph, config),
        }
    }

    /// Creates a simulator sharing an existing device.
    pub fn with_device(graph: Arc<CircuitGraph>, config: SimConfig, device: Arc<Device>) -> Self {
        Gatspi {
            session: Session::with_device(graph, config, device),
        }
    }

    /// The underlying compiled session (migration escape hatch: call the
    /// session API directly from code still holding a `Gatspi`).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Converts this facade into its underlying [`Session`].
    pub fn into_session(self) -> Session {
        self.session
    }

    /// The simulation graph.
    pub fn graph(&self) -> &Arc<CircuitGraph> {
        self.session.graph()
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        self.session.config()
    }

    /// The simulated device.
    pub fn device(&self) -> &Arc<Device> {
        self.session.device()
    }

    /// Re-simulates the design with default options.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    #[deprecated(since = "0.2.0", note = "use `Session::run` (or `run_with`) instead")]
    pub fn run(&self, stimuli: &[Waveform], duration: SimTime) -> Result<SimResult> {
        self.session.run(stimuli, duration)
    }

    /// "OpenMP-equivalent" CPU run (Table 3).
    ///
    /// # Errors
    ///
    /// As [`Session::run_cpu`].
    #[deprecated(since = "0.2.0", note = "use `Session::run_cpu` instead")]
    pub fn run_cpu(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        threads: usize,
    ) -> Result<SimResult> {
        self.session.run_cpu(stimuli, duration, threads)
    }

    /// Full application run on an explicit device.
    ///
    /// # Errors
    ///
    /// As [`Session::run_on_device`].
    #[deprecated(since = "0.2.0", note = "use `Session::run_on_device` instead")]
    pub fn run_on_device(
        &self,
        device: Arc<Device>,
        stimuli: &[Waveform],
        duration: SimTime,
    ) -> Result<SimResult> {
        self.session.run_on_device(device, stimuli, duration)
    }
}
