use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gatspi_gpu::{AppPhaseProfile, Device, DeviceMemory, KernelProfile, LaunchConfig};
use gatspi_graph::CircuitGraph;
use gatspi_sdf::NO_ARC;
use gatspi_wave::saif::{SaifDocument, SaifRecord};
use gatspi_wave::{SimTime, Waveform, EOW, INIT_ONE_MARKER};

use crate::kernel::{simulate_gate, GateKernelInput, KernelMode, KernelOutput, MAX_KERNEL_PINS};
use crate::result::ExtractionState;
use crate::ring::{DumpMsg, DumpRing};
use crate::schedule::{BatchScratch, HostState, LevelSchedule};
use crate::{CoreError, Result, SimConfig, SimResult};

/// Levels with at least this many threads prefix-sum their count-pass
/// outputs across host workers; smaller levels scan serially. The serial
/// scan is one load+add per thread (~1 ns), so forking only pays once the
/// scan itself reaches milliseconds — set high enough that the two
/// fork/join rounds (tens of µs each) are noise against the scan saved.
const PARALLEL_PREFIX_MIN: usize = 1 << 21;

/// Upper bound on prefix-sum workers (bounds the stack-resident partial-sum
/// arrays so the hot path stays allocation-free).
const MAX_PREFIX_WORKERS: usize = 64;

/// The GATSPI re-simulator (Fig. 5): owns a simulated device, restructures
/// stimulus into cycle-parallel windows, and drives the two-pass levelized
/// kernel schedule.
#[derive(Debug)]
pub struct Gatspi {
    graph: Arc<CircuitGraph>,
    config: SimConfig,
    device: Arc<Device>,
    /// Collapsed (rise, fall) delay per pin slot — the Table 7 "partial
    /// SDF" 2-element arrays, precomputed once.
    avg_delays: Vec<(i32, i32)>,
}

/// Accumulated outcome of simulating one batch of windows on one device.
pub(crate) struct WindowBatch {
    pub windows: Vec<(SimTime, SimTime)>,
    pub ptrs: Vec<u32>,
    pub tc: Vec<u64>,
    pub t0: Vec<i64>,
    pub t1: Vec<i64>,
    pub kernel_profile: KernelProfile,
    pub launches: u64,
    pub fused_launches: u64,
    pub dump_wait_seconds: f64,
}

impl Gatspi {
    /// Creates a simulator for `graph`, allocating the configured device.
    pub fn new(graph: Arc<CircuitGraph>, config: SimConfig) -> Self {
        let device = Arc::new(Device::new(config.device.clone(), config.memory_words));
        Self::with_device(graph, config, device)
    }

    /// Creates a simulator sharing an existing device (multi-GPU shards and
    /// CPU-backend runs use this).
    pub fn with_device(graph: Arc<CircuitGraph>, config: SimConfig, device: Arc<Device>) -> Self {
        let avg_delays = compute_avg_delays(&graph);
        Gatspi {
            graph,
            config,
            device,
            avg_delays,
        }
    }

    /// The simulation graph.
    pub fn graph(&self) -> &Arc<CircuitGraph> {
        &self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The simulated device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Re-simulates the design: `stimuli[k]` is the waveform of the k-th
    /// primary input (graph order) over `[0, duration)`.
    ///
    /// The stimulus is cut into `cycle_parallelism` windows (aligned to
    /// [`SimConfig::window_align`]) that simulate concurrently; if the
    /// device arena cannot hold all windows at once the run transparently
    /// splits into sequential segments (the paper's "compile the testbench
    /// into shorter segments" fallback).
    ///
    /// # Errors
    ///
    /// * [`CoreError::StimulusMismatch`] if the waveform count is wrong.
    /// * [`CoreError::OutOfMemory`] if even a single window exceeds device
    ///   memory.
    pub fn run(&self, stimuli: &[Waveform], duration: SimTime) -> Result<SimResult> {
        self.run_on_device(Arc::clone(&self.device), stimuli, duration)
    }

    /// "OpenMP-equivalent" CPU run (Table 3): the identical algorithm
    /// executed with `threads` host threads and no GPU performance model —
    /// consumers should read measured wall times from the result.
    ///
    /// # Errors
    ///
    /// As [`Gatspi::run`].
    pub fn run_cpu(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        threads: usize,
    ) -> Result<SimResult> {
        let device = Arc::new(Device::with_workers(
            self.config.device.clone(),
            self.config.memory_words,
            threads,
        ));
        self.run_on_device(device, stimuli, duration)
    }

    /// Full application run on an explicit device.
    ///
    /// # Errors
    ///
    /// As [`Gatspi::run`].
    pub fn run_on_device(
        &self,
        device: Arc<Device>,
        stimuli: &[Waveform],
        duration: SimTime,
    ) -> Result<SimResult> {
        let t_app = Instant::now();
        let n_pis = self.graph.primary_inputs().len();
        if stimuli.len() != n_pis {
            return Err(CoreError::StimulusMismatch {
                expected: n_pis,
                got: stimuli.len(),
            });
        }
        device.memory().reset_counters();
        let windows = self.make_windows(duration, self.config.cycle_parallelism);

        // --- Input restructuring (the dominant init cost in Table 5).
        let t0 = Instant::now();
        let win_stims = self.restructure(stimuli, &windows, device.workers());
        let restructure_seconds = t0.elapsed().as_secs_f64();

        // --- Adaptive segmentation over windows.
        let n_signals = self.graph.n_signals();
        let mut tc = vec![0u64; n_signals];
        let mut t0_acc = vec![0i64; n_signals];
        let mut t1_acc = vec![0i64; n_signals];
        let mut profile = KernelProfile::empty("resim");
        let mut launches = 0u64;
        let mut fused_launches = 0u64;
        let mut dump_wait = 0.0f64;
        let mut extraction: Option<ExtractionState> = None;
        let mut segments = 0usize;
        let mut i = 0usize;
        let mut chunk = windows.len();
        while i < windows.len() {
            let end = (i + chunk).min(windows.len());
            match self.run_window_batch(&device, &windows[i..end], &win_stims[i..end]) {
                Ok(batch) => {
                    for s in 0..n_signals {
                        tc[s] += batch.tc[s];
                        t0_acc[s] += batch.t0[s];
                        t1_acc[s] += batch.t1[s];
                    }
                    profile.accumulate(&batch.kernel_profile);
                    launches += batch.launches;
                    fused_launches += batch.fused_launches;
                    dump_wait += batch.dump_wait_seconds;
                    extraction = Some(ExtractionState {
                        device: Arc::clone(&device),
                        ptrs: batch.ptrs,
                        windows: batch.windows,
                        n_signals,
                    });
                    segments += 1;
                    i = end;
                }
                Err(CoreError::OutOfMemory { .. }) if chunk > 1 => {
                    chunk = chunk.div_ceil(2);
                }
                Err(e) => return Err(e),
            }
        }

        // --- Assemble SAIF and result.
        let (saif, toggle_counts) = self.assemble_saif(stimuli, duration, &tc, &t0_acc, &t1_acc);
        let spec = device.spec();
        let h2d_bytes = device.memory().h2d_bytes() + self.graph.device_bytes();
        let sync_launch_seconds = launches as f64 * spec.launch_overhead;
        let app_profile = AppPhaseProfile {
            h2d_seconds: h2d_bytes as f64 / spec.pcie_bw,
            sync_launch_seconds,
            kernel_seconds: (profile.modeled_seconds - sync_launch_seconds).max(0.0),
            restructure_seconds,
            dump_seconds: dump_wait,
            launches,
            fused_launches,
            h2d_bytes,
        };
        Ok(SimResult {
            saif,
            kernel_profile: profile,
            app_profile,
            wall_seconds: t_app.elapsed().as_secs_f64(),
            toggle_counts,
            duration,
            segments,
            extraction: if segments == 1 { extraction } else { None },
        })
    }

    /// Splits `[0, duration)` into up to `slots` windows aligned to
    /// `window_align` ticks.
    pub(crate) fn make_windows(&self, duration: SimTime, slots: usize) -> Vec<(SimTime, SimTime)> {
        let align = i64::from(self.config.window_align.max(1));
        let duration64 = i64::from(duration.max(1));
        let slots = slots.max(1) as i64;
        let aligned_units = (duration64 + align - 1) / align;
        let units_per_window = ((aligned_units + slots - 1) / slots).max(1);
        let window_len = units_per_window * align;
        let mut out = Vec::new();
        let mut start = 0i64;
        while start < duration64 {
            let end = (start + window_len).min(duration64);
            out.push((start as SimTime, end as SimTime));
            start = end;
        }
        out
    }

    /// Cuts every stimulus into per-window re-based waveforms.
    ///
    /// Windows are independent, so the restructuring — the dominant init
    /// cost in Table 5 — fans out across the device's host workers.
    /// `workers` is the executing device's host-worker count, so the
    /// "OpenMP-equivalent" CPU regime (`run_cpu`) restructures with the
    /// same thread cap it simulates with.
    pub(crate) fn restructure(
        &self,
        stimuli: &[Waveform],
        windows: &[(SimTime, SimTime)],
        workers: usize,
    ) -> Vec<Vec<Waveform>> {
        let cut = |&(s, e): &(SimTime, SimTime)| -> Vec<Waveform> {
            stimuli.iter().map(|w| w.window(s, e)).collect()
        };
        let workers = workers.min(windows.len());
        if workers <= 1 || windows.len() * stimuli.len() < 64 {
            return windows.iter().map(cut).collect();
        }
        let mut out: Vec<Vec<Waveform>> = Vec::new();
        out.resize_with(windows.len(), Vec::new);
        let chunk = windows.len().div_ceil(workers);
        crossbeam::thread::scope(|s| {
            for (win_chunk, out_chunk) in windows.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (w, slot) in win_chunk.iter().zip(out_chunk) {
                        *slot = cut(w);
                    }
                });
            }
        })
        .expect("restructure worker panicked");
        out
    }

    /// Builds the SAIF document: primary inputs straight from the stimulus,
    /// gate outputs from the kernel-side accumulators.
    pub(crate) fn assemble_saif(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        tc: &[u64],
        t0: &[i64],
        t1: &[i64],
    ) -> (SaifDocument, Vec<u64>) {
        let graph = &self.graph;
        let mut toggle_counts = vec![0u64; graph.n_signals()];
        let mut doc = SaifDocument::new(graph.name(), i64::from(duration));
        for (k, &pi) in graph.primary_inputs().iter().enumerate() {
            let w = &stimuli[k];
            let (d0, d1) = w.durations(duration);
            toggle_counts[pi.index()] = w.toggle_count() as u64;
            doc.nets.insert(
                graph.signal_name(pi).to_string(),
                SaifRecord {
                    t0: d0,
                    t1: d1,
                    tx: 0,
                    tc: w.toggle_count() as u64,
                    ig: 0,
                },
            );
        }
        for s in 0..graph.n_signals() {
            let sid = gatspi_graph::SignalId(s as u32);
            if graph.driver(sid).is_none() {
                continue;
            }
            toggle_counts[s] = tc[s];
            doc.nets.insert(
                graph.signal_name(sid).to_string(),
                SaifRecord {
                    t0: t0[s],
                    t1: t1[s],
                    tx: 0,
                    tc: tc[s],
                    ig: 0,
                },
            );
        }
        (doc, toggle_counts)
    }

    /// Simulates one batch of windows on `device` (one memory segment):
    /// uploads stimulus, builds the batch's [`LevelSchedule`], runs the
    /// two-pass levelized schedule (fusing runs of small levels into single
    /// phased launches), overlaps the SAIF scan with kernel execution, and
    /// returns the accumulators.
    ///
    /// After schedule construction the per-level loop is allocation-free:
    /// scratch buffers live in the batch's [`BatchScratch`] arena, working
    /// sets come from running per-signal sums, and dump messages travel
    /// through a preallocated ring.
    pub(crate) fn run_window_batch(
        &self,
        device: &Device,
        windows: &[(SimTime, SimTime)],
        win_stims: &[Vec<Waveform>],
    ) -> Result<WindowBatch> {
        let graph = &*self.graph;
        let n_signals = graph.n_signals();
        let nw = windows.len();
        let capacity = device.memory().len();

        let schedule = LevelSchedule::build(graph, nw, self.config.fuse_threshold);
        let scratch = schedule.new_scratch(n_signals);
        let mut host = HostState::new(n_signals);

        // Upload the restructured stimulus windows.
        for (w, stims) in win_stims.iter().enumerate() {
            for (k, &pi) in graph.primary_inputs().iter().enumerate() {
                let wf = &stims[k];
                let words = wf.len_words();
                let base = host.bump + (host.bump & 1);
                if base + words > capacity {
                    return Err(CoreError::OutOfMemory {
                        requested: base + words,
                        capacity,
                    });
                }
                device.memory().h2d(base, wf.raw());
                scratch.ptrs[w * n_signals + pi.index()].store(base as u32, Ordering::Relaxed);
                scratch.lens[w * n_signals + pi.index()].store(words as u32, Ordering::Relaxed);
                host.len_sum[pi.index()] += words as u64;
                host.bump = base + words;
            }
        }
        host.bump += host.bump & 1; // keep the allocator even-aligned for outputs

        let features = self.config.features;
        let ppp = self.config.path_pulse_percent;
        let avg_delays = &self.avg_delays;
        // Sized so a full level (or fused group) can publish without
        // waiting on the scan — keeps the dumper overlap the async design
        // exists for.
        let ring = DumpRing::with_capacity(schedule.dump_backlog().max(8192));

        let mut profile = KernelProfile::empty("resim");
        let mut launches = 0u64;
        let mut fused_launches = 0u64;
        let mut level_err: Option<CoreError> = None;
        let mut dump_wait = 0.0f64;

        let (tc, t0_acc, t1_acc) = crossbeam::thread::scope(|scope| {
            // Asynchronous SAIF dumper: scans finished waveforms while
            // later levels are still simulating.
            let mem: &DeviceMemory = device.memory();
            let ring_ref = &ring;
            let dumper = scope.spawn(move |_| {
                // Guard: if this thread dies (saif_scan panic), a full
                // ring's push fails loudly instead of spinning forever.
                let _guard = ring_ref.consumer_guard();
                let mut tc = vec![0u64; n_signals];
                let mut t0 = vec![0i64; n_signals];
                let mut t1 = vec![0i64; n_signals];
                while let Some(msg) = ring_ref.pop() {
                    let (c, d0, d1) = saif_scan(mem, msg.ptr, msg.clip);
                    tc[msg.signal as usize] += c;
                    t0[msg.signal as usize] += d0;
                    t1[msg.signal as usize] += d1;
                }
                (tc, t0, t1)
            });

            // If anything below panics (launch expect, bounds assert), the
            // unwinding drop closes the ring so the dumper exits and the
            // scope join can propagate the panic instead of deadlocking.
            let _ring_closer = ring.producer_guard();

            let schedule_ref = &schedule;
            let scratch_ref = &scratch;
            // One kernel invocation: thread `tid` of `level`, count or
            // store pass. All lookups index the schedule's dense tables.
            let exec = |level: usize, tid: usize, store: bool, lane: &mut _| {
                let ld = schedule_ref.level(level);
                let gi = tid / nw;
                let w = tid % nw;
                let slot = ld.gate_lo as usize + gi;
                let pins = schedule_ref.pins_of(slot);
                let mut in_ptrs = [0u32; MAX_KERNEL_PINS];
                for (k, &sig) in pins.iter().enumerate() {
                    in_ptrs[k] =
                        scratch_ref.ptrs[w * n_signals + sig as usize].load(Ordering::Relaxed);
                }
                let input = GateKernelInput {
                    graph,
                    gate: schedule_ref.gate(slot),
                    mem,
                    in_ptrs: &in_ptrs[..pins.len()],
                    features,
                    ppp,
                    avg_delays,
                };
                if store {
                    let out_base = scratch_ref.bases[tid].load(Ordering::Relaxed) as usize;
                    let out = simulate_gate(&input, KernelMode::Store { out_base }, lane);
                    debug_assert_eq!(
                        out.pack(),
                        scratch_ref.outs[tid].load(Ordering::Relaxed),
                        "count and store passes diverged"
                    );
                } else {
                    let out = simulate_gate(&input, KernelMode::Count, lane);
                    scratch_ref.outs[tid].store(out.pack(), Ordering::Relaxed);
                }
            };

            'groups: for group in schedule.groups() {
                let first = group.levels.start;
                if group.fused {
                    // --- Fused: one phased launch covers the whole run of
                    // levels; the leader worker does the prefix-sum and
                    // pointer publication at phase boundaries.
                    // Known limitation: the working set is sampled at
                    // launch time, so waveforms produced *inside* the
                    // group (later levels' inputs, all outputs) are not
                    // counted — the L2 model sees a lower bound. Fused
                    // groups are small by construction, so the modeled
                    // error is bounded; see ROADMAP "Fused-launch working
                    // sets".
                    let ws: u64 = group
                        .levels
                        .clone()
                        .map(|l| host.level_ws(&schedule, l))
                        .sum();
                    let cfg = LaunchConfig {
                        threads: group.threads,
                        threads_per_block: self.config.threads_per_block,
                        regs_per_thread: self.config.regs_per_thread,
                        working_set_bytes: 4 * ws,
                    };
                    let host_ref = &mut host;
                    let p = device.launch_phased(
                        "resim_fused",
                        &cfg,
                        schedule.phases(group),
                        |phase, tid, lane| exec(first + phase / 2, tid, phase % 2 == 1, lane),
                        |phase| {
                            let level = first + phase / 2;
                            let threads = schedule_ref.level(level).threads;
                            if phase % 2 == 0 {
                                match assign_bases_serial(
                                    &scratch_ref.outs[..threads],
                                    &scratch_ref.bases[..threads],
                                    host_ref.bump,
                                    capacity,
                                ) {
                                    Ok((new_bump, _)) => {
                                        host_ref.bump = new_bump;
                                        true
                                    }
                                    Err(e) => {
                                        host_ref.oom = Some(e);
                                        false
                                    }
                                }
                            } else {
                                publish_level(
                                    schedule_ref,
                                    scratch_ref,
                                    host_ref,
                                    level,
                                    windows,
                                    n_signals,
                                    ring_ref,
                                );
                                true
                            }
                        },
                    );
                    profile.accumulate(&p);
                    launches += 1;
                    fused_launches += 1;
                    if let Some(e) = host.oom.take() {
                        level_err = Some(e);
                        break 'groups;
                    }
                } else {
                    // --- Classic two-pass schedule for one wide level.
                    let threads = schedule.level(first).threads;
                    if threads == 0 {
                        continue;
                    }
                    let ws_in = host.level_ws(&schedule, first);
                    let cfg = LaunchConfig {
                        threads,
                        threads_per_block: self.config.threads_per_block,
                        regs_per_thread: self.config.regs_per_thread,
                        working_set_bytes: 4 * ws_in,
                    };
                    let p1 = device.launch("resim_count", &cfg, |tid, lane| {
                        exec(first, tid, false, lane);
                    });
                    profile.accumulate(&p1);
                    launches += 1;

                    // Host: prefix-sum allocation of output waveforms,
                    // parallelized across device workers for wide levels.
                    let assigned = assign_bases(
                        &scratch.outs[..threads],
                        &scratch.bases[..threads],
                        host.bump,
                        capacity,
                        device.workers(),
                    );
                    let new_words = match assigned {
                        Ok((new_bump, new_words)) => {
                            host.bump = new_bump;
                            new_words
                        }
                        Err(e) => {
                            level_err = Some(e);
                            break 'groups;
                        }
                    };

                    let store_cfg = LaunchConfig {
                        working_set_bytes: 4 * (ws_in + new_words),
                        ..cfg
                    };
                    let p2 = device.launch("resim_store", &store_cfg, |tid, lane| {
                        exec(first, tid, true, lane);
                    });
                    profile.accumulate(&p2);
                    launches += 1;

                    publish_level(
                        &schedule, &scratch, &mut host, first, windows, n_signals, &ring,
                    );
                }
            }

            ring.close();
            let t_wait = Instant::now();
            let acc = dumper.join().expect("dumper panicked");
            dump_wait = t_wait.elapsed().as_secs_f64();
            acc
        })
        .expect("simulation scope panicked");

        if let Some(e) = level_err {
            return Err(e);
        }
        Ok(WindowBatch {
            windows: windows.to_vec(),
            ptrs: scratch.ptrs_snapshot(),
            tc,
            t0: t0_acc,
            t1: t1_acc,
            kernel_profile: profile,
            launches,
            fused_launches,
            dump_wait_seconds: dump_wait,
        })
    }
}

/// Publishes one finished level: records output pointers/lengths, advances
/// the running working-set sums, and streams every (gate, window) waveform
/// to the SAIF dumper ring. Allocation-free.
fn publish_level(
    schedule: &LevelSchedule,
    scratch: &BatchScratch,
    host: &mut HostState,
    level: usize,
    windows: &[(SimTime, SimTime)],
    n_signals: usize,
    ring: &DumpRing,
) {
    let nw = windows.len();
    let ld = schedule.level(level);
    for gi in 0..(ld.gate_hi - ld.gate_lo) as usize {
        let sig = schedule.out_sig(ld.gate_lo as usize + gi);
        for (w, &(ws, we)) in windows.iter().enumerate() {
            let tid = gi * nw + w;
            let packed = scratch.outs[tid].load(Ordering::Relaxed);
            let words = KernelOutput::unpack_words(packed);
            let base = scratch.bases[tid].load(Ordering::Relaxed);
            scratch.ptrs[w * n_signals + sig].store(base, Ordering::Relaxed);
            scratch.lens[w * n_signals + sig].store(words, Ordering::Relaxed);
            host.len_sum[sig] += u64::from(words);
            ring.push(DumpMsg {
                signal: sig as u32,
                ptr: base,
                clip: we - ws,
            });
        }
    }
}

/// Serial prefix-sum of the count-pass outputs: assigns every thread its
/// even-aligned arena base.
///
/// # Errors
///
/// [`CoreError::OutOfMemory`] if the level's outputs exceed the arena.
fn assign_bases_serial(
    outs: &[AtomicU64],
    bases: &[AtomicU32],
    bump: usize,
    capacity: usize,
) -> Result<(usize, u64)> {
    let mut cursor = bump;
    for (out, base) in outs.iter().zip(bases) {
        let words_even = KernelOutput::unpack_words_even(out.load(Ordering::Relaxed));
        if cursor + words_even > capacity {
            return Err(CoreError::OutOfMemory {
                requested: cursor + words_even,
                capacity,
            });
        }
        base.store(cursor as u32, Ordering::Relaxed);
        cursor += words_even;
    }
    Ok((cursor, (cursor - bump) as u64))
}

/// Prefix-sum of the count-pass outputs, chunked across host workers for
/// wide levels: per-chunk sums in parallel, a serial scan over the chunk
/// totals (at most [`MAX_PREFIX_WORKERS`] entries, on the stack), then
/// parallel base assignment.
///
/// # Errors
///
/// As [`assign_bases_serial`].
fn assign_bases(
    outs: &[AtomicU64],
    bases: &[AtomicU32],
    bump: usize,
    capacity: usize,
    workers: usize,
) -> Result<(usize, u64)> {
    let threads = outs.len();
    if threads < PARALLEL_PREFIX_MIN || workers <= 1 {
        return assign_bases_serial(outs, bases, bump, capacity);
    }
    let workers = workers.min(MAX_PREFIX_WORKERS).min(threads);
    let chunk = threads.div_ceil(workers);

    let mut sums = [0u64; MAX_PREFIX_WORKERS];
    crossbeam::thread::scope(|s| {
        for (outs_chunk, sum) in outs.chunks(chunk).zip(sums.iter_mut()) {
            s.spawn(move |_| {
                *sum = outs_chunk
                    .iter()
                    .map(|o| KernelOutput::unpack_words_even(o.load(Ordering::Relaxed)) as u64)
                    .sum();
            });
        }
    })
    .expect("prefix-sum worker panicked");

    let total: u64 = sums.iter().sum();
    if bump as u64 + total > capacity as u64 {
        return Err(CoreError::OutOfMemory {
            requested: bump + total as usize,
            capacity,
        });
    }

    // Exclusive scan over chunk totals, then parallel assignment.
    let mut offsets = [0u64; MAX_PREFIX_WORKERS];
    let mut running = bump as u64;
    for (o, s) in offsets.iter_mut().zip(sums) {
        *o = running;
        running += s;
    }
    crossbeam::thread::scope(|s| {
        for ((outs_chunk, bases_chunk), &start) in outs
            .chunks(chunk)
            .zip(bases.chunks(chunk))
            .zip(offsets.iter())
        {
            s.spawn(move |_| {
                let mut cursor = start;
                for (o, b) in outs_chunk.iter().zip(bases_chunk) {
                    b.store(cursor as u32, Ordering::Relaxed);
                    cursor += KernelOutput::unpack_words_even(o.load(Ordering::Relaxed)) as u64;
                }
            });
        }
    })
    .expect("prefix-assign worker panicked");

    Ok((bump + total as usize, total))
}

/// Precomputes the collapsed average (rise, fall) delay for every pin slot
/// (Table 7 "No Full SDF" mode).
fn compute_avg_delays(graph: &CircuitGraph) -> Vec<(i32, i32)> {
    let mut out = Vec::new();
    for g in 0..graph.n_gates() {
        let n = graph.gate_fanin(g).len();
        let (fb_r, fb_f) = graph.fallback_delay(g);
        for pin in 0..n {
            let lut = graph.delay_lut(g, pin);
            let ncols = lut.len() / 4;
            let mut avg = [(0i64, 0i64); 2]; // (sum, n) per output edge
            for row in 0..4usize {
                for c in 0..ncols {
                    let d = lut[row * ncols + c];
                    if d != NO_ARC {
                        let e = &mut avg[row % 2];
                        e.0 += i64::from(d);
                        e.1 += 1;
                    }
                }
            }
            let rise = if avg[0].1 > 0 {
                (avg[0].0 / avg[0].1) as i32
            } else {
                fb_r
            };
            let fall = if avg[1].1 > 0 {
                (avg[1].0 / avg[1].1) as i32
            } else {
                fb_f
            };
            out.push((rise, fall));
        }
    }
    out
}

/// Scans a stored waveform computing `(toggle count, time at 0, time at 1)`
/// clipped to `[0, clip)` — the SAIF record of one window, read directly
/// from device memory without materialising the waveform.
fn saif_scan(mem: &DeviceMemory, ptr: u32, clip: SimTime) -> (u64, i64, i64) {
    let mut idx = ptr as usize;
    let mut first = mem.load(idx);
    if first == INIT_ONE_MARKER {
        idx += 1;
        first = mem.load(idx);
    }
    debug_assert_eq!(first, 0);
    let mut val = idx % 2 == 1;
    let mut tc = 0u64;
    let mut t0 = 0i64;
    let mut t1 = 0i64;
    let mut prev = 0i64;
    let clip64 = i64::from(clip);
    loop {
        idx += 1;
        let t = mem.load(idx);
        if t == EOW || i64::from(t) >= clip64 {
            break;
        }
        let span = i64::from(t) - prev;
        if val {
            t1 += span;
        } else {
            t0 += span;
        }
        prev = i64::from(t);
        val = idx % 2 == 1;
        tc += 1;
    }
    let tail = clip64 - prev;
    if tail > 0 {
        if val {
            t1 += tail;
        } else {
            t0 += tail;
        }
    }
    (tc, t0, t1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    fn inv_chain(n: usize) -> Arc<CircuitGraph> {
        let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
        let mut prev = b.add_input("a").unwrap();
        for i in 0..n {
            let net = b.add_net(&format!("n{i}")).unwrap();
            b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
            prev = net;
        }
        b.mark_output(prev);
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    #[test]
    fn windows_cover_duration_exactly() {
        let sim = Gatspi::new(inv_chain(1), SimConfig::small().with_window_align(10));
        let ws = sim.make_windows(95, 4);
        assert_eq!(ws.first().unwrap().0, 0);
        assert_eq!(ws.last().unwrap().1, 95);
        for pair in ws.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "contiguous windows");
        }
        // Aligned boundaries except the final clip.
        for &(s, _) in &ws {
            assert_eq!(s % 10, 0);
        }
    }

    #[test]
    fn windows_align_and_clip_edge_cases() {
        let sim = Gatspi::new(inv_chain(1), SimConfig::small().with_window_align(100));
        // Duration shorter than one alignment unit: a single clipped window.
        assert_eq!(sim.make_windows(30, 4), vec![(0, 30)]);
        // Duration exactly one unit.
        assert_eq!(sim.make_windows(100, 4), vec![(0, 100)]);
        // Non-multiple duration: aligned starts, final window clipped.
        let ws = sim.make_windows(250, 2);
        assert_eq!(ws, vec![(0, 200), (200, 250)]);
        // More slots than alignment units: one window per unit, no empties.
        let ws = sim.make_windows(300, 50);
        assert_eq!(ws, vec![(0, 100), (100, 200), (200, 300)]);
        assert!(ws.iter().all(|&(s, e)| s < e), "no empty windows");
    }

    #[test]
    fn windows_degenerate_durations() {
        let sim = Gatspi::new(inv_chain(1), SimConfig::small());
        // Zero (and anything below one tick) clamps to a single minimal
        // window rather than returning an empty cover.
        assert_eq!(sim.make_windows(0, 8), vec![(0, 1)]);
        assert_eq!(sim.make_windows(1, 8), vec![(0, 1)]);
        // Zero slots behaves as one slot.
        assert_eq!(sim.make_windows(500, 0), vec![(0, 500)]);
    }

    #[test]
    fn single_window_when_parallelism_one() {
        let sim = Gatspi::new(inv_chain(1), SimConfig::small().with_cycle_parallelism(1));
        let ws = sim.make_windows(1000, 1);
        assert_eq!(ws, vec![(0, 1000)]);
    }

    #[test]
    fn chain_propagates_and_counts() {
        let graph = inv_chain(4);
        let sim = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        );
        let stim = vec![Waveform::from_toggles(false, &[100, 200, 300])];
        let r = sim.run(&stim, 400).unwrap();
        // Every inverter output toggles 3 times.
        for g in 0..4 {
            let sig = graph.gate_output(g).index();
            assert_eq!(r.toggle_count(sig), 3, "gate {g}");
        }
        // Output waveform: delays accumulate one tick per stage.
        let out = r.waveform(graph.gate_output(3).index()).unwrap();
        // Four inversions of an initially-low input: initial value 0.
        assert_eq!(out.raw(), &[0, 104, 204, 304, EOW]);
    }

    #[test]
    fn windowed_run_matches_single_window() {
        let graph = inv_chain(3);
        let stim = vec![Waveform::from_toggles(
            false,
            &[110, 210, 310, 410, 510, 610, 710],
        )];
        let single = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        )
        .run(&stim, 800)
        .unwrap();
        let windowed = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(8)
                .with_window_align(100),
        )
        .run(&stim, 800)
        .unwrap();
        for s in 0..graph.n_signals() {
            assert_eq!(
                single.toggle_count(s),
                windowed.toggle_count(s),
                "signal {s}"
            );
        }
        assert!(single.saif.diff(&windowed.saif).is_empty());
        // Stitched waveforms match too.
        let a = single.waveform(graph.gate_output(2).index()).unwrap();
        let b = windowed.waveform(graph.gate_output(2).index()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stimulus_mismatch_rejected() {
        let sim = Gatspi::new(inv_chain(1), SimConfig::small());
        let err = sim.run(&[], 100);
        assert!(matches!(err, Err(CoreError::StimulusMismatch { .. })));
    }

    #[test]
    fn segmentation_on_tiny_memory() {
        let graph = inv_chain(2);
        let cfg = SimConfig {
            memory_words: 512,
            ..SimConfig::small()
        }
        .with_cycle_parallelism(16)
        .with_window_align(10);
        let sim = Gatspi::new(Arc::clone(&graph), cfg);
        let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let r = sim.run(&stim, 1500).unwrap();
        assert!(r.segments() > 1, "expected segmentation");
        assert_eq!(r.toggle_count(graph.gate_output(1).index()), 149);
        // Waveform extraction is refused after segmentation.
        assert!(matches!(r.waveform(0), Err(CoreError::Segmented { .. })));
    }

    #[test]
    fn parallel_prefix_sum_matches_serial() {
        let threads = PARALLEL_PREFIX_MIN + 3;
        let outs: Vec<AtomicU64> = (0..threads)
            .map(|i| {
                AtomicU64::new(
                    KernelOutput {
                        toggles: (i % 5) as u32,
                        max_extent: (i % 7) as u32,
                        initial_one: i % 2 == 0,
                    }
                    .pack(),
                )
            })
            .collect();
        let mk = || -> Vec<AtomicU32> { (0..threads).map(|_| AtomicU32::new(0)).collect() };
        let (serial_bases, parallel_bases) = (mk(), mk());
        let cap = usize::MAX;
        let (bump_s, words_s) = assign_bases_serial(&outs, &serial_bases, 10, cap).unwrap();
        let (bump_p, words_p) = assign_bases(&outs, &parallel_bases, 10, cap, 4).unwrap();
        assert_eq!(bump_s, bump_p);
        assert_eq!(words_s, words_p);
        for (a, b) in serial_bases.iter().zip(&parallel_bases) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
        // OOM propagates from the parallel path too.
        assert!(matches!(
            assign_bases(&outs, &parallel_bases, 0, 1000, 4),
            Err(CoreError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn oom_halving_retry_converges_geometrically() {
        // 16 windows with an arena sized so the full batch and the
        // half-batch both overflow but quarter-batches fit: the retry loop
        // must halve 16 → 8 → 4 and then run 4 equal segments.
        let graph = inv_chain(2);
        let toggles: Vec<i32> = (1..160).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let duration = 1600;

        let run = |words: usize| {
            let cfg = SimConfig {
                memory_words: words,
                ..SimConfig::small()
            }
            .with_cycle_parallelism(16)
            .with_window_align(100);
            Gatspi::new(Arc::clone(&graph), cfg).run(&stim, duration)
        };
        let roomy = run(1 << 20).unwrap();
        assert_eq!(roomy.segments(), 1);

        // Find a size that forces exactly 4 segments, then check the
        // result is unchanged.
        let mut seen4 = None;
        for words in (260..1000).step_by(10) {
            if let Ok(r) = run(words) {
                if r.segments() == 4 {
                    seen4 = Some(r);
                    break;
                }
            }
        }
        let tight = seen4.expect("some arena size yields 4 segments");
        assert!(roomy.saif.diff(&tight.saif).is_empty());
        assert_eq!(roomy.total_toggles(), tight.total_toggles());
    }

    #[test]
    fn hard_oom_when_one_window_too_big() {
        let graph = inv_chain(1);
        let cfg = SimConfig {
            memory_words: 8,
            ..SimConfig::small()
        };
        let sim = Gatspi::new(graph, cfg);
        let stim = vec![Waveform::from_toggles(false, &(1..100).collect::<Vec<_>>())];
        let err = sim.run(&stim, 200);
        assert!(matches!(err, Err(CoreError::OutOfMemory { .. })));
    }

    #[test]
    fn saif_t0_t1_sum_to_duration() {
        let graph = inv_chain(2);
        let sim = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(4)
                .with_window_align(50),
        );
        let stim = vec![Waveform::from_toggles(true, &[40, 110, 160])];
        let r = sim.run(&stim, 200).unwrap();
        for (name, rec) in &r.saif.nets {
            assert_eq!(rec.t0 + rec.t1, 200, "net {name}");
        }
    }

    #[test]
    fn app_profile_populated() {
        let graph = inv_chain(3);
        // Fusion disabled: the paper's original schedule, 2 launches per
        // level (3 levels), one segment.
        let sim = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small().with_fuse_threshold(0),
        );
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30])];
        let r = sim.run(&stim, 100).unwrap();
        assert!(r.app_profile.h2d_bytes > 0);
        assert_eq!(r.app_profile.launches, 6);
        assert_eq!(r.app_profile.fused_launches, 0);
        assert!(r.app_profile.h2d_seconds > 0.0);
        assert!(r.kernel_profile.modeled_seconds > 0.0);
        assert!(r.wall_seconds > 0.0);
    }

    #[test]
    fn fused_schedule_cuts_launches() {
        // 3 levels × 1 gate × 32 windows = 96 threads, well under the
        // default threshold: the whole chain executes as ONE fused launch.
        let graph = inv_chain(3);
        let sim = Gatspi::new(Arc::clone(&graph), SimConfig::small());
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30])];
        let fused = sim.run(&stim, 100).unwrap();
        assert_eq!(fused.app_profile.launches, 1);
        assert_eq!(fused.app_profile.fused_launches, 1);

        // Bit-identical results either way.
        let unfused = Gatspi::new(graph, SimConfig::small().with_fuse_threshold(0))
            .run(&stim, 100)
            .unwrap();
        assert!(fused.saif.diff(&unfused.saif).is_empty());
        assert!(
            fused.app_profile.sync_launch_seconds < unfused.app_profile.sync_launch_seconds,
            "fewer launches must shrink modeled launch overhead"
        );
    }

    #[test]
    fn fused_oom_surfaces_and_segments() {
        // Tiny arena + fusion: the OOM raised inside a fused launch's
        // phase callback must abort cleanly and trigger segmentation.
        let graph = inv_chain(2);
        let cfg = SimConfig {
            memory_words: 512,
            ..SimConfig::small()
        }
        .with_cycle_parallelism(16)
        .with_window_align(10);
        let sim = Gatspi::new(Arc::clone(&graph), cfg);
        let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let r = sim.run(&stim, 1500).unwrap();
        assert!(r.segments() > 1, "expected segmentation");
        assert_eq!(r.toggle_count(graph.gate_output(1).index()), 149);
    }

    #[test]
    fn run_cpu_matches_gpu_results() {
        let graph = inv_chain(3);
        let sim = Gatspi::new(Arc::clone(&graph), SimConfig::small());
        let stim = vec![Waveform::from_toggles(false, &[10, 25, 40, 55])];
        let gpu = sim.run(&stim, 100).unwrap();
        let cpu = sim.run_cpu(&stim, 100, 2).unwrap();
        assert!(gpu.saif.diff(&cpu.saif).is_empty());
    }

    #[test]
    fn activity_factor_computed() {
        let graph = inv_chain(1);
        let sim = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        );
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30, 40])];
        let r = sim.run(&stim, 100).unwrap();
        // 8 toggles over 2 signals, 10 cycles of length 10.
        assert!((r.activity_factor(10) - 0.4).abs() < 1e-9);
        assert_eq!(r.total_toggles(), 8);
    }
}
