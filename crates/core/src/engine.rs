use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gatspi_gpu::{AppPhaseProfile, Device, DeviceMemory, KernelProfile, LaunchConfig};
use gatspi_graph::CircuitGraph;
use gatspi_sdf::NO_ARC;
use gatspi_wave::saif::{SaifDocument, SaifRecord};
use gatspi_wave::{SimTime, Waveform, EOW, INIT_ONE_MARKER};

use crate::kernel::{simulate_gate, GateKernelInput, KernelMode, MAX_KERNEL_PINS};
use crate::result::ExtractionState;
use crate::{CoreError, Result, SimConfig, SimResult};

/// The GATSPI re-simulator (Fig. 5): owns a simulated device, restructures
/// stimulus into cycle-parallel windows, and drives the two-pass levelized
/// kernel schedule.
#[derive(Debug)]
pub struct Gatspi {
    graph: Arc<CircuitGraph>,
    config: SimConfig,
    device: Arc<Device>,
    /// Collapsed (rise, fall) delay per pin slot — the Table 7 "partial
    /// SDF" 2-element arrays, precomputed once.
    avg_delays: Vec<(i32, i32)>,
}

/// Message to the asynchronous SAIF dumper: one finished (signal, window)
/// waveform.
struct DumpMsg {
    signal: u32,
    ptr: u32,
    clip: SimTime,
}

/// Accumulated outcome of simulating one batch of windows on one device.
pub(crate) struct WindowBatch {
    pub windows: Vec<(SimTime, SimTime)>,
    pub ptrs: Vec<u32>,
    pub tc: Vec<u64>,
    pub t0: Vec<i64>,
    pub t1: Vec<i64>,
    pub kernel_profile: KernelProfile,
    pub launches: u64,
    pub dump_wait_seconds: f64,
}

impl Gatspi {
    /// Creates a simulator for `graph`, allocating the configured device.
    pub fn new(graph: Arc<CircuitGraph>, config: SimConfig) -> Self {
        let device = Arc::new(Device::new(config.device.clone(), config.memory_words));
        Self::with_device(graph, config, device)
    }

    /// Creates a simulator sharing an existing device (multi-GPU shards and
    /// CPU-backend runs use this).
    pub fn with_device(graph: Arc<CircuitGraph>, config: SimConfig, device: Arc<Device>) -> Self {
        let avg_delays = compute_avg_delays(&graph);
        Gatspi {
            graph,
            config,
            device,
            avg_delays,
        }
    }

    /// The simulation graph.
    pub fn graph(&self) -> &Arc<CircuitGraph> {
        &self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The simulated device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Re-simulates the design: `stimuli[k]` is the waveform of the k-th
    /// primary input (graph order) over `[0, duration)`.
    ///
    /// The stimulus is cut into `cycle_parallelism` windows (aligned to
    /// [`SimConfig::window_align`]) that simulate concurrently; if the
    /// device arena cannot hold all windows at once the run transparently
    /// splits into sequential segments (the paper's "compile the testbench
    /// into shorter segments" fallback).
    ///
    /// # Errors
    ///
    /// * [`CoreError::StimulusMismatch`] if the waveform count is wrong.
    /// * [`CoreError::OutOfMemory`] if even a single window exceeds device
    ///   memory.
    pub fn run(&self, stimuli: &[Waveform], duration: SimTime) -> Result<SimResult> {
        self.run_on_device(Arc::clone(&self.device), stimuli, duration)
    }

    /// "OpenMP-equivalent" CPU run (Table 3): the identical algorithm
    /// executed with `threads` host threads and no GPU performance model —
    /// consumers should read measured wall times from the result.
    ///
    /// # Errors
    ///
    /// As [`Gatspi::run`].
    pub fn run_cpu(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        threads: usize,
    ) -> Result<SimResult> {
        let device = Arc::new(Device::with_workers(
            self.config.device.clone(),
            self.config.memory_words,
            threads,
        ));
        self.run_on_device(device, stimuli, duration)
    }

    /// Full application run on an explicit device.
    ///
    /// # Errors
    ///
    /// As [`Gatspi::run`].
    pub fn run_on_device(
        &self,
        device: Arc<Device>,
        stimuli: &[Waveform],
        duration: SimTime,
    ) -> Result<SimResult> {
        let t_app = Instant::now();
        let n_pis = self.graph.primary_inputs().len();
        if stimuli.len() != n_pis {
            return Err(CoreError::StimulusMismatch {
                expected: n_pis,
                got: stimuli.len(),
            });
        }
        device.memory().reset_counters();
        let windows = self.make_windows(duration, self.config.cycle_parallelism);

        // --- Input restructuring (the dominant init cost in Table 5).
        let t0 = Instant::now();
        let win_stims = self.restructure(stimuli, &windows);
        let restructure_seconds = t0.elapsed().as_secs_f64();

        // --- Adaptive segmentation over windows.
        let n_signals = self.graph.n_signals();
        let mut tc = vec![0u64; n_signals];
        let mut t0_acc = vec![0i64; n_signals];
        let mut t1_acc = vec![0i64; n_signals];
        let mut profile = KernelProfile::empty("resim");
        let mut launches = 0u64;
        let mut dump_wait = 0.0f64;
        let mut extraction: Option<ExtractionState> = None;
        let mut segments = 0usize;
        let mut i = 0usize;
        let mut chunk = windows.len();
        while i < windows.len() {
            let end = (i + chunk).min(windows.len());
            match self.run_window_batch(&device, &windows[i..end], &win_stims[i..end]) {
                Ok(batch) => {
                    for s in 0..n_signals {
                        tc[s] += batch.tc[s];
                        t0_acc[s] += batch.t0[s];
                        t1_acc[s] += batch.t1[s];
                    }
                    profile.accumulate(&batch.kernel_profile);
                    launches += batch.launches;
                    dump_wait += batch.dump_wait_seconds;
                    extraction = Some(ExtractionState {
                        device: Arc::clone(&device),
                        ptrs: batch.ptrs,
                        windows: batch.windows,
                        n_signals,
                    });
                    segments += 1;
                    i = end;
                }
                Err(CoreError::OutOfMemory { .. }) if chunk > 1 => {
                    chunk = chunk.div_ceil(2);
                }
                Err(e) => return Err(e),
            }
        }

        // --- Assemble SAIF and result.
        let (saif, toggle_counts) =
            self.assemble_saif(stimuli, duration, &tc, &t0_acc, &t1_acc);
        let spec = device.spec();
        let h2d_bytes = device.memory().h2d_bytes() + self.graph.device_bytes();
        let sync_launch_seconds = launches as f64 * spec.launch_overhead;
        let app_profile = AppPhaseProfile {
            h2d_seconds: h2d_bytes as f64 / spec.pcie_bw,
            sync_launch_seconds,
            kernel_seconds: (profile.modeled_seconds - sync_launch_seconds).max(0.0),
            restructure_seconds,
            dump_seconds: dump_wait,
            launches,
            h2d_bytes,
        };
        Ok(SimResult {
            saif,
            kernel_profile: profile,
            app_profile,
            wall_seconds: t_app.elapsed().as_secs_f64(),
            toggle_counts,
            duration,
            segments,
            extraction: if segments == 1 { extraction } else { None },
        })
    }

    /// Splits `[0, duration)` into up to `slots` windows aligned to
    /// `window_align` ticks.
    pub(crate) fn make_windows(&self, duration: SimTime, slots: usize) -> Vec<(SimTime, SimTime)> {
        let align = i64::from(self.config.window_align.max(1));
        let duration64 = i64::from(duration.max(1));
        let slots = slots.max(1) as i64;
        let aligned_units = (duration64 + align - 1) / align;
        let units_per_window = ((aligned_units + slots - 1) / slots).max(1);
        let window_len = units_per_window * align;
        let mut out = Vec::new();
        let mut start = 0i64;
        while start < duration64 {
            let end = (start + window_len).min(duration64);
            out.push((start as SimTime, end as SimTime));
            start = end;
        }
        out
    }

    /// Cuts every stimulus into per-window re-based waveforms.
    pub(crate) fn restructure(
        &self,
        stimuli: &[Waveform],
        windows: &[(SimTime, SimTime)],
    ) -> Vec<Vec<Waveform>> {
        windows
            .iter()
            .map(|&(s, e)| stimuli.iter().map(|w| w.window(s, e)).collect())
            .collect()
    }

    /// Builds the SAIF document: primary inputs straight from the stimulus,
    /// gate outputs from the kernel-side accumulators.
    pub(crate) fn assemble_saif(
        &self,
        stimuli: &[Waveform],
        duration: SimTime,
        tc: &[u64],
        t0: &[i64],
        t1: &[i64],
    ) -> (SaifDocument, Vec<u64>) {
        let graph = &self.graph;
        let mut toggle_counts = vec![0u64; graph.n_signals()];
        let mut doc = SaifDocument::new(graph.name(), i64::from(duration));
        for (k, &pi) in graph.primary_inputs().iter().enumerate() {
            let w = &stimuli[k];
            let (d0, d1) = w.durations(duration);
            toggle_counts[pi.index()] = w.toggle_count() as u64;
            doc.nets.insert(
                graph.signal_name(pi).to_string(),
                SaifRecord {
                    t0: d0,
                    t1: d1,
                    tx: 0,
                    tc: w.toggle_count() as u64,
                    ig: 0,
                },
            );
        }
        for s in 0..graph.n_signals() {
            let sid = gatspi_graph::SignalId(s as u32);
            if graph.driver(sid).is_none() {
                continue;
            }
            toggle_counts[s] = tc[s];
            doc.nets.insert(
                graph.signal_name(sid).to_string(),
                SaifRecord {
                    t0: t0[s],
                    t1: t1[s],
                    tx: 0,
                    tc: tc[s],
                    ig: 0,
                },
            );
        }
        (doc, toggle_counts)
    }

    /// Simulates one batch of windows on `device` (one memory segment):
    /// uploads stimulus, runs the two-pass levelized schedule, overlaps the
    /// SAIF scan with kernel execution, and returns the accumulators.
    pub(crate) fn run_window_batch(
        &self,
        device: &Device,
        windows: &[(SimTime, SimTime)],
        win_stims: &[Vec<Waveform>],
    ) -> Result<WindowBatch> {
        let graph = &*self.graph;
        let n_signals = graph.n_signals();
        let nw = windows.len();
        let capacity = device.memory().len();
        let mut bump = 0usize;
        let mut ptrs = vec![u32::MAX; nw * n_signals];
        let mut lens = vec![0u32; nw * n_signals];

        // Upload the restructured stimulus windows.
        for (w, stims) in win_stims.iter().enumerate() {
            for (k, &pi) in graph.primary_inputs().iter().enumerate() {
                let wf = &stims[k];
                let words = wf.len_words();
                let base = bump + (bump & 1);
                if base + words > capacity {
                    return Err(CoreError::OutOfMemory {
                        requested: base + words,
                        capacity,
                    });
                }
                device.memory().h2d(base, wf.raw());
                ptrs[w * n_signals + pi.index()] = base as u32;
                lens[w * n_signals + pi.index()] = words as u32;
                bump = base + words;
            }
        }

        bump += bump & 1; // keep the allocator even-aligned for outputs
        let features = self.config.features;
        let ppp = self.config.path_pulse_percent;
        let avg_delays = &self.avg_delays;
        let (tx, rx) = crossbeam::channel::unbounded::<DumpMsg>();

        let mut profile = KernelProfile::empty("resim");
        let mut launches = 0u64;
        let mut level_err: Option<CoreError> = None;
        let mut dump_wait = 0.0f64;

        let (tc, t0_acc, t1_acc) = crossbeam::thread::scope(|scope| {
            // Asynchronous SAIF dumper: scans finished waveforms while
            // later levels are still simulating.
            let mem: &DeviceMemory = device.memory();
            let dumper = scope.spawn(move |_| {
                let mut tc = vec![0u64; n_signals];
                let mut t0 = vec![0i64; n_signals];
                let mut t1 = vec![0i64; n_signals];
                for msg in rx.iter() {
                    let (c, d0, d1) = saif_scan(mem, msg.ptr, msg.clip);
                    tc[msg.signal as usize] += c;
                    t0[msg.signal as usize] += d0;
                    t1[msg.signal as usize] += d1;
                }
                (tc, t0, t1)
            });

            for level in 0..graph.n_levels() {
                let gates = graph.level_gates(level);
                let threads = gates.len() * nw;
                if threads == 0 {
                    continue;
                }
                // Working set: input waveforms this level touches.
                let mut ws_in = 0u64;
                for &g in gates {
                    for &sig in graph.gate_fanin(g as usize) {
                        for w in 0..nw {
                            ws_in += u64::from(lens[w * n_signals + sig as usize]);
                        }
                    }
                }
                let cfg = LaunchConfig {
                    threads,
                    threads_per_block: self.config.threads_per_block,
                    regs_per_thread: self.config.regs_per_thread,
                    working_set_bytes: 4 * ws_in,
                };

                // --- Pass 1: count.
                let outs: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
                let ptrs_ref = &ptrs;
                let outs_ref = &outs;
                let p1 = device.launch("resim_count", &cfg, |tid, lane| {
                    let gi = tid / nw;
                    let w = tid % nw;
                    let g = gates[gi] as usize;
                    let fanin = graph.gate_fanin(g);
                    let mut in_ptrs = [0u32; MAX_KERNEL_PINS];
                    for (k, &sig) in fanin.iter().enumerate() {
                        in_ptrs[k] = ptrs_ref[w * n_signals + sig as usize];
                    }
                    let input = GateKernelInput {
                        graph,
                        gate: g,
                        mem,
                        in_ptrs: &in_ptrs[..fanin.len()],
                        features,
                        ppp,
                        avg_delays,
                    };
                    let out = simulate_gate(&input, KernelMode::Count, lane);
                    let packed = u64::from(out.toggles)
                        | (u64::from(out.max_extent) << 32)
                        | (u64::from(out.initial_one) << 63);
                    outs_ref[tid].store(packed, Ordering::Relaxed);
                });
                profile.accumulate(&p1);
                launches += 1;

                // --- Host: prefix-sum allocation of output waveforms.
                let mut bases = vec![0u32; threads];
                let mut new_words = 0u64;
                let mut oom = None;
                for tid in 0..threads {
                    let packed = outs[tid].load(Ordering::Relaxed);
                    let max_extent = (packed >> 32) as u32 & 0x7FFF_FFFF;
                    let initial_one = packed >> 63 == 1;
                    let words =
                        (u64::from(initial_one) + 1 + u64::from(max_extent) + 1) as usize;
                    let words_even = words + (words & 1);
                    if bump + words_even > capacity {
                        oom = Some(CoreError::OutOfMemory {
                            requested: bump + words_even,
                            capacity,
                        });
                        break;
                    }
                    bases[tid] = bump as u32;
                    bump += words_even;
                    new_words += words_even as u64;
                }
                if let Some(e) = oom {
                    level_err = Some(e);
                    break;
                }

                // --- Pass 2: store.
                let store_cfg = LaunchConfig {
                    working_set_bytes: 4 * (ws_in + new_words),
                    ..cfg
                };
                let bases_ref = &bases;
                let p2 = device.launch("resim_store", &store_cfg, |tid, lane| {
                    let gi = tid / nw;
                    let w = tid % nw;
                    let g = gates[gi] as usize;
                    let fanin = graph.gate_fanin(g);
                    let mut in_ptrs = [0u32; MAX_KERNEL_PINS];
                    for (k, &sig) in fanin.iter().enumerate() {
                        in_ptrs[k] = ptrs_ref[w * n_signals + sig as usize];
                    }
                    let input = GateKernelInput {
                        graph,
                        gate: g,
                        mem,
                        in_ptrs: &in_ptrs[..fanin.len()],
                        features,
                        ppp,
                        avg_delays,
                    };
                    let out = simulate_gate(
                        &input,
                        KernelMode::Store {
                            out_base: bases_ref[tid] as usize,
                        },
                        lane,
                    );
                    debug_assert_eq!(
                        u64::from(out.toggles) | (u64::from(out.max_extent) << 32)
                            | (u64::from(out.initial_one) << 63),
                        outs_ref[tid].load(Ordering::Relaxed),
                        "count and store passes diverged"
                    );
                });
                profile.accumulate(&p2);
                launches += 1;

                // --- Publish output pointers; stream results to the dumper.
                for (gi, &g) in gates.iter().enumerate() {
                    let sig = graph.gate_output(g as usize).index();
                    for w in 0..nw {
                        let tid = gi * nw + w;
                        let packed = outs[tid].load(Ordering::Relaxed);
                        let max_extent = (packed >> 32) as u32 & 0x7FFF_FFFF;
                        let initial_one = packed >> 63 == 1;
                        let words = u32::from(initial_one) + 1 + max_extent + 1;
                        ptrs[w * n_signals + sig] = bases[tid];
                        lens[w * n_signals + sig] = words;
                        let (ws, we) = windows[w];
                        tx.send(DumpMsg {
                            signal: sig as u32,
                            ptr: bases[tid],
                            clip: we - ws,
                        })
                        .expect("dumper alive");
                    }
                }
            }

            drop(tx);
            let t_wait = Instant::now();
            let acc = dumper.join().expect("dumper panicked");
            dump_wait = t_wait.elapsed().as_secs_f64();
            acc
        })
        .expect("simulation scope panicked");

        if let Some(e) = level_err {
            return Err(e);
        }
        Ok(WindowBatch {
            windows: windows.to_vec(),
            ptrs,
            tc,
            t0: t0_acc,
            t1: t1_acc,
            kernel_profile: profile,
            launches,
            dump_wait_seconds: dump_wait,
        })
    }
}

/// Precomputes the collapsed average (rise, fall) delay for every pin slot
/// (Table 7 "No Full SDF" mode).
fn compute_avg_delays(graph: &CircuitGraph) -> Vec<(i32, i32)> {
    let mut out = Vec::new();
    for g in 0..graph.n_gates() {
        let n = graph.gate_fanin(g).len();
        let (fb_r, fb_f) = graph.fallback_delay(g);
        for pin in 0..n {
            let lut = graph.delay_lut(g, pin);
            let ncols = lut.len() / 4;
            let mut avg = [(0i64, 0i64); 2]; // (sum, n) per output edge
            for row in 0..4usize {
                for c in 0..ncols {
                    let d = lut[row * ncols + c];
                    if d != NO_ARC {
                        let e = &mut avg[row % 2];
                        e.0 += i64::from(d);
                        e.1 += 1;
                    }
                }
            }
            let rise = if avg[0].1 > 0 {
                (avg[0].0 / avg[0].1) as i32
            } else {
                fb_r
            };
            let fall = if avg[1].1 > 0 {
                (avg[1].0 / avg[1].1) as i32
            } else {
                fb_f
            };
            out.push((rise, fall));
        }
    }
    out
}

/// Scans a stored waveform computing `(toggle count, time at 0, time at 1)`
/// clipped to `[0, clip)` — the SAIF record of one window, read directly
/// from device memory without materialising the waveform.
fn saif_scan(mem: &DeviceMemory, ptr: u32, clip: SimTime) -> (u64, i64, i64) {
    let mut idx = ptr as usize;
    let mut first = mem.load(idx);
    if first == INIT_ONE_MARKER {
        idx += 1;
        first = mem.load(idx);
    }
    debug_assert_eq!(first, 0);
    let mut val = idx % 2 == 1;
    let mut tc = 0u64;
    let mut t0 = 0i64;
    let mut t1 = 0i64;
    let mut prev = 0i64;
    let clip64 = i64::from(clip);
    loop {
        idx += 1;
        let t = mem.load(idx);
        if t == EOW || i64::from(t) >= clip64 {
            break;
        }
        let span = i64::from(t) - prev;
        if val {
            t1 += span;
        } else {
            t0 += span;
        }
        prev = i64::from(t);
        val = idx % 2 == 1;
        tc += 1;
    }
    let tail = clip64 - prev;
    if tail > 0 {
        if val {
            t1 += tail;
        } else {
            t0 += tail;
        }
    }
    (tc, t0, t1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    fn inv_chain(n: usize) -> Arc<CircuitGraph> {
        let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
        let mut prev = b.add_input("a").unwrap();
        for i in 0..n {
            let net = b.add_net(&format!("n{i}")).unwrap();
            b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
            prev = net;
        }
        b.mark_output(prev);
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    #[test]
    fn windows_cover_duration_exactly() {
        let sim = Gatspi::new(inv_chain(1), SimConfig::small().with_window_align(10));
        let ws = sim.make_windows(95, 4);
        assert_eq!(ws.first().unwrap().0, 0);
        assert_eq!(ws.last().unwrap().1, 95);
        for pair in ws.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "contiguous windows");
        }
        // Aligned boundaries except the final clip.
        for &(s, _) in &ws {
            assert_eq!(s % 10, 0);
        }
    }

    #[test]
    fn single_window_when_parallelism_one() {
        let sim = Gatspi::new(
            inv_chain(1),
            SimConfig::small().with_cycle_parallelism(1),
        );
        let ws = sim.make_windows(1000, 1);
        assert_eq!(ws, vec![(0, 1000)]);
    }

    #[test]
    fn chain_propagates_and_counts() {
        let graph = inv_chain(4);
        let sim = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        );
        let stim = vec![Waveform::from_toggles(false, &[100, 200, 300])];
        let r = sim.run(&stim, 400).unwrap();
        // Every inverter output toggles 3 times.
        for g in 0..4 {
            let sig = graph.gate_output(g).index();
            assert_eq!(r.toggle_count(sig), 3, "gate {g}");
        }
        // Output waveform: delays accumulate one tick per stage.
        let out = r.waveform(graph.gate_output(3).index()).unwrap();
        // Four inversions of an initially-low input: initial value 0.
        assert_eq!(out.raw(), &[0, 104, 204, 304, EOW]);
    }

    #[test]
    fn windowed_run_matches_single_window() {
        let graph = inv_chain(3);
        let stim = vec![Waveform::from_toggles(
            false,
            &[110, 210, 310, 410, 510, 610, 710],
        )];
        let single = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        )
        .run(&stim, 800)
        .unwrap();
        let windowed = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(8)
                .with_window_align(100),
        )
        .run(&stim, 800)
        .unwrap();
        for s in 0..graph.n_signals() {
            assert_eq!(
                single.toggle_count(s),
                windowed.toggle_count(s),
                "signal {s}"
            );
        }
        assert!(single.saif.diff(&windowed.saif).is_empty());
        // Stitched waveforms match too.
        let a = single.waveform(graph.gate_output(2).index()).unwrap();
        let b = windowed.waveform(graph.gate_output(2).index()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stimulus_mismatch_rejected() {
        let sim = Gatspi::new(inv_chain(1), SimConfig::small());
        let err = sim.run(&[], 100);
        assert!(matches!(err, Err(CoreError::StimulusMismatch { .. })));
    }

    #[test]
    fn segmentation_on_tiny_memory() {
        let graph = inv_chain(2);
        let cfg = SimConfig {
            memory_words: 512,
            ..SimConfig::small()
        }
        .with_cycle_parallelism(16)
        .with_window_align(10);
        let sim = Gatspi::new(Arc::clone(&graph), cfg);
        let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
        let stim = vec![Waveform::from_toggles(false, &toggles)];
        let r = sim.run(&stim, 1500).unwrap();
        assert!(r.segments() > 1, "expected segmentation");
        assert_eq!(r.toggle_count(graph.gate_output(1).index()), 149);
        // Waveform extraction is refused after segmentation.
        assert!(matches!(
            r.waveform(0),
            Err(CoreError::Segmented { .. })
        ));
    }

    #[test]
    fn hard_oom_when_one_window_too_big() {
        let graph = inv_chain(1);
        let cfg = SimConfig {
            memory_words: 8,
            ..SimConfig::small()
        };
        let sim = Gatspi::new(graph, cfg);
        let stim = vec![Waveform::from_toggles(false, &(1..100).collect::<Vec<_>>())];
        let err = sim.run(&stim, 200);
        assert!(matches!(err, Err(CoreError::OutOfMemory { .. })));
    }

    #[test]
    fn saif_t0_t1_sum_to_duration() {
        let graph = inv_chain(2);
        let sim = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small()
                .with_cycle_parallelism(4)
                .with_window_align(50),
        );
        let stim = vec![Waveform::from_toggles(true, &[40, 110, 160])];
        let r = sim.run(&stim, 200).unwrap();
        for (name, rec) in &r.saif.nets {
            assert_eq!(rec.t0 + rec.t1, 200, "net {name}");
        }
    }

    #[test]
    fn app_profile_populated() {
        let graph = inv_chain(3);
        let sim = Gatspi::new(graph, SimConfig::small());
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30])];
        let r = sim.run(&stim, 100).unwrap();
        assert!(r.app_profile.h2d_bytes > 0);
        // 2 launches per level (3 levels), one segment.
        assert_eq!(r.app_profile.launches, 6);
        assert!(r.app_profile.h2d_seconds > 0.0);
        assert!(r.kernel_profile.modeled_seconds > 0.0);
        assert!(r.wall_seconds > 0.0);
    }

    #[test]
    fn run_cpu_matches_gpu_results() {
        let graph = inv_chain(3);
        let sim = Gatspi::new(Arc::clone(&graph), SimConfig::small());
        let stim = vec![Waveform::from_toggles(false, &[10, 25, 40, 55])];
        let gpu = sim.run(&stim, 100).unwrap();
        let cpu = sim.run_cpu(&stim, 100, 2).unwrap();
        assert!(gpu.saif.diff(&cpu.saif).is_empty());
    }

    #[test]
    fn activity_factor_computed() {
        let graph = inv_chain(1);
        let sim = Gatspi::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(1),
        );
        let stim = vec![Waveform::from_toggles(false, &[10, 20, 30, 40])];
        let r = sim.run(&stim, 100).unwrap();
        // 8 toggles over 2 signals, 10 cycles of length 10.
        assert!((r.activity_factor(10) - 0.4).abs() < 1e-9);
        assert_eq!(r.total_toggles(), 8);
    }
}
