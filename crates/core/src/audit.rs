//! Structural auditing of compiled launch plans.
//!
//! The engine's launch schedules ([`schedule`](crate) internals) bake every
//! per-batch decision — level partitioning, gate descriptors, pin tables,
//! fusion groups, scratch-column slabs — into flat arrays the kernels index
//! without checking. That makes plan-compile bugs silent until a kernel
//! reads garbage, which is exactly the failure class a simulator cannot
//! afford: a wrong LUT offset produces plausible-but-wrong delays, not a
//! crash.
//!
//! This module exposes the schedule's structural checker to tooling without
//! exposing the schedule types themselves: [`validate_full_plan`] and
//! [`validate_cone_plan`] compile a plan exactly the way
//! [`Session`](crate::Session) would (same builder, same fusion threshold
//! semantics) and return one human-readable message per violated invariant.
//! `cargo run -p xtask -- validate-plans` runs them over every workloads
//! suite entry in CI; the mutation tests in the schedule module pin down
//! that each invariant class actually fires.
//!
//! Checked invariants (empty return = sound plan):
//!
//! * flat-table shapes: descriptor/output/pin-CSR arrays sized to the slot
//!   count, pin CSR monotone from 0 and consistent with the pin tables;
//! * levels form a contiguous, non-empty partition of the slots with
//!   thread counts equal to gates × windows, each fitting the scratch
//!   column;
//! * every slot's baked [`GateDesc`](crate::GateDesc), output signal, pin
//!   signals, and interconnect delays agree with the graph, with
//!   truth-table and delay-LUT offsets inside the flat pools;
//! * topological consistency: each pin's producer runs at a strictly
//!   earlier level, or — for cone plans only — is supplied by the cone's
//!   boundary stimulus;
//! * coverage: full plans schedule every gate exactly once; cone plans
//!   schedule exactly the cone's gates and the cone is closed under fanout;
//! * launch groups partition the levels in order with consistent thread
//!   sums; fused groups own two phases per level and **disjoint**, in-bound
//!   scratch-column slabs (the invariant the overlapped publish path relies
//!   on).

use crate::schedule::{ConeInfo, LevelSchedule};

use gatspi_graph::CircuitGraph;

/// Compiles the full-graph launch plan for `windows` concurrent windows at
/// the given fusion threshold (`0` disables fusion, matching
/// [`SimConfig::fuse_threshold`](crate::SimConfig)) and audits it. Returns
/// one message per structural defect; an empty vector means the plan upholds
/// every invariant listed in the [module docs](self).
pub fn validate_full_plan(
    graph: &CircuitGraph,
    windows: usize,
    fuse_threshold: usize,
) -> Vec<String> {
    let plan = LevelSchedule::build(graph, windows.max(1), fuse_threshold);
    plan.validate(graph, None)
}

/// Compiles the cone-restricted launch plan for the fan-out cone of
/// `changed` (per-gate flags, one per graph gate) and audits it, including
/// the cone-specific checks: closure under fanout, boundary-stimulus
/// completeness, and exact gate coverage. Returns one message per defect.
///
/// A `changed` slice of the wrong length is reported as a defect rather
/// than panicking, so audit tooling can feed it untrusted inputs.
pub fn validate_cone_plan(
    graph: &CircuitGraph,
    windows: usize,
    fuse_threshold: usize,
    changed: &[bool],
) -> Vec<String> {
    if changed.len() != graph.n_gates() {
        return vec![format!(
            "changed-gate flags cover {} gates, graph has {}",
            changed.len(),
            graph.n_gates()
        )];
    }
    let cone = ConeInfo::of(graph, changed);
    let plan = LevelSchedule::restrict(graph, windows.max(1), fuse_threshold, &cone);
    plan.validate(graph, Some(&cone))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    fn chain(n: usize) -> CircuitGraph {
        let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
        let mut prev = b.add_input("a").unwrap();
        for i in 0..n {
            let net = b.add_net(&format!("n{i}")).unwrap();
            b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
            prev = net;
        }
        b.mark_output(prev);
        CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap()
    }

    #[test]
    fn wrappers_audit_clean_plans() {
        let g = chain(8);
        assert_eq!(validate_full_plan(&g, 4, 0), Vec::<String>::new());
        assert_eq!(validate_full_plan(&g, 4, 4096), Vec::<String>::new());
        let mut changed = vec![false; g.n_gates()];
        changed[5] = true;
        assert_eq!(validate_cone_plan(&g, 4, 0, &changed), Vec::<String>::new());
        assert_eq!(
            validate_cone_plan(&g, 4, 4096, &changed),
            Vec::<String>::new()
        );
        // An all-false changed set yields an empty (and vacuously sound)
        // cone plan rather than an error.
        assert_eq!(
            validate_cone_plan(&g, 4, 0, &vec![false; g.n_gates()]),
            Vec::<String>::new()
        );
    }

    #[test]
    fn wrapper_reports_bad_changed_length_instead_of_panicking() {
        let g = chain(4);
        let defects = validate_cone_plan(&g, 2, 0, &[true]);
        assert_eq!(defects.len(), 1);
        assert!(defects[0].contains("changed-gate flags"), "{defects:?}");
    }
}
