use std::sync::Arc;

use gatspi_gpu::{AppPhaseProfile, Device, KernelProfile};
use gatspi_wave::saif::SaifDocument;
use gatspi_wave::{SimTime, Waveform, WaveformBuilder, EOW, INIT_ONE_MARKER};

use crate::{CoreError, Result};

/// Per-run extraction state: everything needed to stitch a signal's full
/// waveform back out of device memory. Present only for unsegmented runs.
#[derive(Debug)]
pub(crate) struct ExtractionState {
    pub device: Arc<Device>,
    /// `ptr[w * n_signals + s]`: word offset of signal `s`'s waveform in
    /// window `w`, or `u32::MAX` for absent (floating) signals.
    pub ptrs: Vec<u32>,
    pub windows: Vec<(SimTime, SimTime)>,
    pub n_signals: usize,
}

/// The outcome of a GATSPI run: SAIF activity, per-signal toggle counts,
/// kernel and application profiles, and (for unsegmented runs) access to
/// the full simulated waveforms.
#[derive(Debug)]
pub struct SimResult {
    /// SAIF document over all primary inputs and gate outputs.
    pub saif: SaifDocument,
    /// Accumulated re-simulation kernel profile (modeled GPU metrics plus
    /// measured wall time across all level launches).
    pub kernel_profile: KernelProfile,
    /// Application-phase breakdown (Table 5 style).
    pub app_profile: AppPhaseProfile,
    /// Measured wall-clock seconds for the whole run (application runtime).
    pub wall_seconds: f64,
    pub(crate) toggle_counts: Vec<u64>,
    pub(crate) duration: SimTime,
    pub(crate) segments: usize,
    pub(crate) extraction: Option<ExtractionState>,
}

impl SimResult {
    /// Simulated duration in ticks.
    pub fn duration(&self) -> SimTime {
        self.duration
    }

    /// How many sequential memory segments the run needed (1 = everything
    /// fit in device memory at once).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Total toggle count of a signal across the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn toggle_count(&self, signal: usize) -> u64 {
        self.toggle_counts[signal]
    }

    /// Sum of toggles over all signals.
    pub fn total_toggles(&self) -> u64 {
        self.toggle_counts.iter().sum()
    }

    /// Per-signal toggle counts (indexed by signal, length
    /// `graph.n_signals()`).
    pub fn toggle_counts_slice(&self) -> &[u64] {
        &self.toggle_counts
    }

    /// Activity factor: toggles per signal per `cycle_time`-long cycle.
    pub fn activity_factor(&self, cycle_time: SimTime) -> f64 {
        let cycles = (self.duration / cycle_time.max(1)).max(1) as f64;
        let signals = self.toggle_counts.len().max(1) as f64;
        self.total_toggles() as f64 / (signals * cycles)
    }

    /// Reconstructs the full waveform of a signal by stitching its
    /// per-window waveforms (re-based to absolute time, clipped at window
    /// boundaries).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Segmented`] if the run used more than one memory
    ///   segment (earlier segments' waveforms were overwritten).
    /// * [`CoreError::NoSuchSignal`] for out-of-range indices.
    pub fn waveform(&self, signal: usize) -> Result<Waveform> {
        let ext = self.extraction.as_ref().ok_or(CoreError::Segmented {
            segments: self.segments,
        })?;
        if signal >= ext.n_signals {
            return Err(CoreError::NoSuchSignal { index: signal });
        }
        let mem = ext.device.memory();
        let mut builder: Option<WaveformBuilder> = None;
        for (w, &(start, end)) in ext.windows.iter().enumerate() {
            let ptr = ext.ptrs[w * ext.n_signals + signal];
            if ptr == u32::MAX {
                // Floating signal: constant 0.
                return Ok(Waveform::constant(false));
            }
            let mut idx = ptr as usize;
            let mut first = mem.load(idx);
            if first == INIT_ONE_MARKER {
                idx += 1;
                first = mem.load(idx);
            }
            debug_assert_eq!(first, 0, "window waveform starts at time 0");
            let initial = idx % 2 == 1;
            let b = builder.get_or_insert_with(|| WaveformBuilder::new(initial));
            if start > 0 {
                // Align the stitched value with this window's initial value.
                let _ = b.set_value(start, initial);
            }
            let wlen = end - start;
            loop {
                idx += 1;
                let t = mem.load(idx);
                if t == EOW {
                    break;
                }
                if t >= wlen {
                    // Spillover past the window boundary: the next window
                    // re-derives state from its own initial values.
                    break;
                }
                let v = idx % 2 == 1;
                let _ = b.set_value(start + t, v);
            }
        }
        Ok(builder
            .map(WaveformBuilder::finish)
            .unwrap_or_else(|| Waveform::constant(false)))
    }

    /// Convenience: the waveforms of several signals.
    ///
    /// # Errors
    ///
    /// As [`SimResult::waveform`].
    pub fn waveforms(&self, signals: &[usize]) -> Result<Vec<Waveform>> {
        signals.iter().map(|&s| self.waveform(s)).collect()
    }

    /// Raw device words of one signal's waveform in one window (diagnostic
    /// view of the Fig. 3 storage, up to and including the EOW terminator).
    ///
    /// # Errors
    ///
    /// As [`SimResult::waveform`]; additionally fails for out-of-range
    /// windows.
    pub fn raw_window(&self, signal: usize, window: usize) -> Result<Vec<i32>> {
        let ext = self.extraction.as_ref().ok_or(CoreError::Segmented {
            segments: self.segments,
        })?;
        if signal >= ext.n_signals || window >= ext.windows.len() {
            return Err(CoreError::NoSuchSignal { index: signal });
        }
        let mem = ext.device.memory();
        let ptr = ext.ptrs[window * ext.n_signals + signal];
        if ptr == u32::MAX {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut idx = ptr as usize;
        loop {
            let w = mem.load(idx);
            out.push(w);
            if w == EOW {
                return Ok(out);
            }
            idx += 1;
        }
    }
}
