use std::sync::Arc;

use gatspi_gpu::{AppPhaseProfile, Device, KernelProfile};
use gatspi_wave::saif::SaifDocument;
use gatspi_wave::{SimTime, Waveform, WaveformBuilder, EOW, INIT_ONE_MARKER};

use crate::sink::SpillSink;
use crate::{CoreError, Result};

/// Per-run extraction state: everything needed to stitch a signal's full
/// waveform straight out of device memory. Present only for unsegmented
/// runs (a segmented run reuses the arena; enable
/// [`RunOptions::spill_waveforms`](crate::RunOptions::spill_waveforms) to
/// keep host copies instead).
#[derive(Debug)]
pub(crate) struct ExtractionState {
    pub device: Arc<Device>,
    /// `ptr[w * n_signals + s]`: word offset of signal `s`'s waveform in
    /// window `w`, or `u32::MAX` for absent (floating) signals.
    pub ptrs: Vec<u32>,
    pub windows: Vec<(SimTime, SimTime)>,
    pub n_signals: usize,
    /// Arena generation these pointers belong to; a later run on the same
    /// device advances it, turning reads into [`CoreError::StaleExtraction`]
    /// instead of silently stitching the next run's data.
    pub epoch: u64,
}

impl ExtractionState {
    fn check_live(&self) -> Result<()> {
        if self.device.memory().epoch() == self.epoch {
            Ok(())
        } else {
            Err(CoreError::StaleExtraction)
        }
    }
}

/// The outcome of a GATSPI run: SAIF activity, per-signal toggle counts,
/// kernel and application profiles, and access to the full simulated
/// waveforms (directly from device memory for unsegmented runs, or from
/// the host spill for segmented runs that requested it).
#[derive(Debug)]
pub struct SimResult {
    /// SAIF document over all primary inputs and gate outputs.
    pub saif: SaifDocument,
    /// Accumulated re-simulation kernel profile (modeled GPU metrics plus
    /// measured wall time across all level launches).
    pub kernel_profile: KernelProfile,
    /// Application-phase breakdown (Table 5 style).
    pub app_profile: AppPhaseProfile,
    /// Measured wall-clock seconds for the whole run (application runtime).
    pub wall_seconds: f64,
    pub(crate) toggle_counts: Vec<u64>,
    pub(crate) duration: SimTime,
    pub(crate) segments: usize,
    pub(crate) extraction: Option<ExtractionState>,
    pub(crate) spilled: Option<SpillSink>,
}

impl SimResult {
    /// Simulated duration in ticks.
    pub fn duration(&self) -> SimTime {
        self.duration
    }

    /// How many sequential memory segments the run needed (1 = everything
    /// fit in device memory at once).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Total toggle count of a signal across the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn toggle_count(&self, signal: usize) -> u64 {
        self.toggle_counts[signal]
    }

    /// Sum of toggles over all signals.
    pub fn total_toggles(&self) -> u64 {
        self.toggle_counts.iter().sum()
    }

    /// Per-signal toggle counts (indexed by signal, length
    /// `graph.n_signals()`).
    pub fn toggle_counts_slice(&self) -> &[u64] {
        &self.toggle_counts
    }

    /// Activity factor: toggles per signal per `cycle_time`-long cycle.
    pub fn activity_factor(&self, cycle_time: SimTime) -> f64 {
        let cycles = (self.duration / cycle_time.max(1)).max(1) as f64;
        let signals = self.toggle_counts.len().max(1) as f64;
        self.total_toggles() as f64 / (signals * cycles)
    }

    /// Reconstructs the full waveform of a signal by stitching its
    /// per-window waveforms (re-based to absolute time, clipped at window
    /// boundaries).
    ///
    /// Runs that enabled
    /// [`RunOptions::spill_waveforms`](crate::RunOptions::spill_waveforms)
    /// are served from the durable host spill — valid for any segment
    /// count and after later runs on the same session. Without spill, an
    /// unsegmented run reads live device memory, which is only valid until
    /// the next run recycles the session's arena (detected and reported as
    /// an error rather than silently reading the newer run's data).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Segmented`] if the run used more than one memory
    ///   segment and did not spill waveforms to the host.
    /// * [`CoreError::StaleExtraction`] if a later run recycled the device
    ///   arena under a device-backed (non-spilled) result.
    /// * [`CoreError::NoSuchSignal`] for out-of-range indices.
    pub fn waveform(&self, signal: usize) -> Result<Waveform> {
        if let Some(ext) = &self.extraction {
            ext.check_live()?;
            if signal >= ext.n_signals {
                return Err(CoreError::NoSuchSignal { index: signal });
            }
            let mem = ext.device.memory();
            let ptr_of = |w: usize| {
                let p = ext.ptrs[w * ext.n_signals + signal];
                (p != u32::MAX).then_some(p as usize)
            };
            let wave = stitch_windows(&ext.windows, &ptr_of, &|idx| mem.load(idx));
            // Re-check after reading: a run racing on another thread could
            // have recycled the arena mid-stitch; fail rather than return
            // words mixed from two runs.
            ext.check_live()?;
            return Ok(wave);
        }
        if let Some(spill) = &self.spilled {
            if signal >= spill.n_signals {
                return Err(CoreError::NoSuchSignal { index: signal });
            }
            let ptr_of = |w: usize| {
                let p = spill.ptrs[w * spill.n_signals + signal];
                (p != u64::MAX).then_some(p as usize)
            };
            // Encoded spill pointers advance within their chunk under +1,
            // and their low bit is the in-chunk offset's parity — exactly
            // what the stitcher's index arithmetic needs.
            return Ok(stitch_windows(&spill.windows, &ptr_of, &|idx| {
                spill.word(idx as u64)
            }));
        }
        Err(CoreError::Segmented {
            segments: self.segments,
        })
    }

    /// Convenience: the waveforms of several signals.
    ///
    /// # Errors
    ///
    /// As [`SimResult::waveform`].
    pub fn waveforms(&self, signals: &[usize]) -> Result<Vec<Waveform>> {
        signals.iter().map(|&s| self.waveform(s)).collect()
    }

    /// Raw device words of one signal's waveform in one window (diagnostic
    /// view of the Fig. 3 storage, up to and including the EOW terminator).
    /// Served from device memory or the host spill, like
    /// [`SimResult::waveform`].
    ///
    /// # Errors
    ///
    /// As [`SimResult::waveform`]; additionally fails for out-of-range
    /// windows.
    pub fn raw_window(&self, signal: usize, window: usize) -> Result<Vec<i32>> {
        if let Some(ext) = &self.extraction {
            ext.check_live()?;
            if signal >= ext.n_signals || window >= ext.windows.len() {
                return Err(CoreError::NoSuchSignal { index: signal });
            }
            let mem = ext.device.memory();
            let p = ext.ptrs[window * ext.n_signals + signal];
            let raw = read_raw((p != u32::MAX).then_some(p as usize), &|idx| mem.load(idx));
            // Re-check after reading (see `waveform`).
            ext.check_live()?;
            return Ok(raw);
        }
        if let Some(spill) = &self.spilled {
            if signal >= spill.n_signals || window >= spill.windows.len() {
                return Err(CoreError::NoSuchSignal { index: signal });
            }
            let p = spill.ptrs[window * spill.n_signals + signal];
            return Ok(read_raw((p != u64::MAX).then_some(p as usize), &|idx| {
                spill.word(idx as u64)
            }));
        }
        Err(CoreError::Segmented {
            segments: self.segments,
        })
    }
}

/// Reads one stored waveform up to and including the EOW terminator.
fn read_raw(ptr: Option<usize>, load: &dyn Fn(usize) -> i32) -> Vec<i32> {
    let Some(mut idx) = ptr else {
        return Vec::new();
    };
    let mut out = Vec::new();
    loop {
        let w = load(idx);
        out.push(w);
        if w == EOW {
            return out;
        }
        idx += 1;
    }
}

/// Stitches a signal's per-window waveforms into one absolute-time
/// waveform. `ptr_of(window)` resolves the window's waveform base (`None`
/// for absent/floating), and `load` reads words (device memory or the
/// host spill — both keep waveform bases even, so the parity encoding of
/// values by word index holds in either store).
fn stitch_windows(
    windows: &[(SimTime, SimTime)],
    ptr_of: &dyn Fn(usize) -> Option<usize>,
    load: &dyn Fn(usize) -> i32,
) -> Waveform {
    let mut builder: Option<WaveformBuilder> = None;
    for (w, &(start, end)) in windows.iter().enumerate() {
        let Some(ptr) = ptr_of(w) else {
            // Floating signal: constant 0.
            return Waveform::constant(false);
        };
        let mut idx = ptr;
        let mut first = load(idx);
        if first == INIT_ONE_MARKER {
            idx += 1;
            first = load(idx);
        }
        debug_assert_eq!(first, 0, "window waveform starts at time 0");
        let initial = idx % 2 == 1;
        let b = builder.get_or_insert_with(|| WaveformBuilder::new(initial));
        if start > 0 {
            // Align the stitched value with this window's initial value.
            let _ = b.set_value(start, initial);
        }
        let wlen = end - start;
        loop {
            idx += 1;
            let t = load(idx);
            if t == EOW {
                break;
            }
            if t >= wlen {
                // Spillover past the window boundary: the next window
                // re-derives state from its own initial values.
                break;
            }
            let v = idx % 2 == 1;
            let _ = b.set_value(start + t, v);
        }
    }
    builder
        .map(WaveformBuilder::finish)
        .unwrap_or_else(|| Waveform::constant(false))
}
