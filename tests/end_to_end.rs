//! End-to-end file-format flows: Verilog + SDF + VCD in, SAIF out, with
//! every artifact round-tripped through its textual form — the paper's
//! Fig. 2 pipeline exercised as a black box.

use std::sync::Arc;

use gatspi_core::{Session, SimConfig, Speculation};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{verilog, CellLibrary};
use gatspi_refsim::{EventSimulator, RefConfig};
use gatspi_sdf::SdfFile;
use gatspi_wave::saif::SaifDocument;
use gatspi_wave::{vcd, Waveform};
use gatspi_workloads::circuits::int_adder_array;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

/// Full pipeline with all interchange formats serialized and re-parsed.
#[test]
fn fig2_pipeline_through_text_formats() {
    // Generate a design, then push everything through text.
    let design0 = int_adder_array(8, 2);
    let sdf0 = attach_sdf(&design0, &SdfGenConfig::default());
    let gv_text = verilog::write(&design0);
    let sdf_text = sdf0.write();

    let netlist = verilog::parse(&gv_text, CellLibrary::industry_mini()).expect("gv parse");
    let sdf = SdfFile::parse(&sdf_text).expect("sdf parse");
    let graph =
        Arc::new(CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap());

    let cycle = 400;
    let cycles = 120usize;
    let stimuli0 = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.5, 31),
    );
    // Stimulus through VCD text.
    let names: Vec<String> = graph
        .primary_inputs()
        .iter()
        .map(|&s| graph.signal_name(s).to_string())
        .collect();
    let vcd_text = vcd::write("tb", names.iter().map(String::as_str).zip(stimuli0.iter()));
    let tb = vcd::parse(&vcd_text).expect("vcd parse");
    let stimuli: Vec<Waveform> = graph
        .primary_inputs()
        .iter()
        .map(|&s| tb.signals[graph.signal_name(s)].clone())
        .collect();
    assert_eq!(stimuli, stimuli0, "stimulus survives VCD round-trip");

    let duration = cycle * cycles as i32;
    let sim = Session::new(
        Arc::clone(&graph),
        SimConfig::small().with_window_align(cycle),
    );
    let result = sim.run(&stimuli, duration).expect("simulate");

    // SAIF through text and back.
    let saif_text = result.saif.write();
    let parsed = SaifDocument::parse(&saif_text).expect("saif parse");
    assert!(result.saif.diff(&parsed).is_empty());

    // And the whole thing is still reference-exact.
    let r = EventSimulator::new(&graph, RefConfig::default())
        .run(&stimuli, duration)
        .expect("reference");
    assert!(result.saif.diff(&r.saif).is_empty());
}

/// The app-level profile exposes the Fig. 5 structure: data upload, two
/// launches per level, and a non-trivial restructuring phase.
#[test]
fn application_profile_structure() {
    let design = int_adder_array(16, 2);
    let sdf = attach_sdf(&design, &SdfGenConfig::default());
    let graph =
        Arc::new(CircuitGraph::build(&design, Some(&sdf), &GraphOptions::default()).unwrap());
    let cycle = 400;
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(64, cycle, 0.5, 3),
    );
    // Pin `Speculation::Off` to observe the paper's simulate-twice
    // structure; the shipping default (`Auto`) halves these launches.
    let sim = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_window_align(cycle)
            .with_fuse_threshold(0)
            .with_speculation(Speculation::Off),
    );
    let r = sim.run(&stimuli, cycle * 64).expect("simulate");
    assert_eq!(
        r.app_profile.launches as usize,
        2 * graph.n_levels(),
        "two kernel launches per logic level in the unfused schedule"
    );
    let spec = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_window_align(cycle)
            .with_fuse_threshold(0),
    )
    .run(&stimuli, cycle * 64)
    .expect("simulate speculative");
    assert_eq!(
        spec.app_profile.overflow_repairs, 0,
        "a cold predictor's static first-touch bound cannot overflow"
    );
    assert_eq!(
        spec.app_profile.launches as usize,
        graph.n_levels(),
        "speculation without repairs needs one launch per level"
    );
    assert!(r.saif.diff(&spec.saif).is_empty());
    assert_eq!(r.app_profile.fused_launches, 0);
    assert!(r.app_profile.h2d_bytes > 0);
    assert!(r.app_profile.h2d_seconds > 0.0);
    assert!(r.app_profile.total_seconds() > 0.0);
    assert!(r.kernel_profile.accesses > 0);
    assert!(r.kernel_profile.occupancy_pct > 0.0);

    // With launch fusion at its default threshold the same run needs at
    // most half the launches (small levels share phased launches) and
    // produces identical results.
    let fused = Session::new(
        Arc::clone(&graph),
        SimConfig::small().with_window_align(cycle),
    )
    .run(&stimuli, cycle * 64)
    .expect("simulate fused");
    assert!(
        fused.app_profile.launches * 2 <= r.app_profile.launches,
        "fusion must at least halve launches on this design: {} vs {}",
        fused.app_profile.launches,
        r.app_profile.launches
    );
    assert!(fused.app_profile.fused_launches > 0);
    assert!(r.saif.diff(&fused.saif).is_empty());
}

/// Engines also agree under ablated features and relaxed pulse filtering,
/// when configured identically (Table 7's "No Net Delay" column).
#[test]
fn ablation_configs_stay_equivalent() {
    let design = int_adder_array(8, 2);
    let sdf = attach_sdf(&design, &SdfGenConfig::default());
    let graph =
        Arc::new(CircuitGraph::build(&design, Some(&sdf), &GraphOptions::default()).unwrap());
    let cycle = 400;
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(80, cycle, 0.7, 17),
    );
    let duration = cycle * 80;

    for (net_filter, ppp) in [(false, 100u32), (true, 40), (false, 0)] {
        let cfg = SimConfig {
            features: gatspi_core::SimFeatures {
                net_delay_filtering: net_filter,
                full_sdf: true,
            },
            path_pulse_percent: ppp,
            ..SimConfig::small().with_window_align(cycle)
        };
        let g = Session::new(Arc::clone(&graph), cfg)
            .run(&stimuli, duration)
            .expect("gatspi");
        let r = EventSimulator::new(
            &graph,
            RefConfig {
                net_delay_filtering: net_filter,
                path_pulse_percent: ppp,
                record_waveforms: false,
            },
        )
        .run(&stimuli, duration)
        .expect("ref");
        assert!(
            g.saif.diff(&r.saif).is_empty(),
            "diverged at net_filter={net_filter} ppp={ppp}"
        );
    }
}

/// Disabling interconnect filtering must not *lose* activity — transport-y
/// behaviour passes more pulses (the Table 7 accuracy argument).
#[test]
fn net_filtering_reduces_toggles() {
    let design = int_adder_array(16, 1);
    // Hand the wires meaningful delays so filtering has something to do.
    let sdf = attach_sdf(
        &design,
        &SdfGenConfig {
            interconnect_probability: 0.9,
            max_net_delay: 6,
            ..SdfGenConfig::default()
        },
    );
    let graph =
        Arc::new(CircuitGraph::build(&design, Some(&sdf), &GraphOptions::default()).unwrap());
    let cycle = 500;
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(150, cycle, 0.9, 23),
    );
    let duration = cycle * 150;
    let run = |filter: bool| {
        let cfg = SimConfig {
            features: gatspi_core::SimFeatures {
                net_delay_filtering: filter,
                full_sdf: true,
            },
            ..SimConfig::small().with_window_align(cycle)
        };
        Session::new(Arc::clone(&graph), cfg)
            .run(&stimuli, duration)
            .expect("run")
            .total_toggles()
    };
    assert!(run(false) >= run(true));
}
