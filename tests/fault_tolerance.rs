//! Chaos suite: deterministic fault injection must never change what a
//! run produces — only whether (and how) it recovers. Randomized
//! [`FaultPlan`] schedules of transient launch/allocation/transfer faults
//! and stalls are replayed against serial, segmented, streaming,
//! incremental and multi-GPU runs and compared bit-for-bit against
//! fault-free baselines; permanent device loss mid-run exercises
//! multi-GPU shard failover; and a faulted session must stay usable
//! (un-poisoned scratch pool, plan cache and dump machinery).
//!
//! Run with `cargo test --features fault-inject`. The rotating-seed test
//! honours `GATSPI_CHAOS_SEED` so CI can sweep fresh schedules while
//! staying replayable from its log.
#![cfg(feature = "fault-inject")]

use std::sync::Arc;

use gatspi_core::{
    CoreError, FaultKind, RetryPolicy, RunOptions, Session, SimConfig, SimResult, WaveformSink,
    WindowInfo,
};
use gatspi_gpu::{Device, DeviceSpec, FaultInjector, FaultPlan, FaultSite, MultiGpu};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_workloads::circuits::{random_logic, RandomLogicConfig};
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};
use proptest::prelude::*;

/// Random logic with SDF delays — wide enough for multi-gate levels, MSI
/// activity and real spill traffic.
fn wide_graph(seed: u64) -> Arc<CircuitGraph> {
    let netlist = random_logic(&RandomLogicConfig {
        gates: 220,
        inputs: 12,
        depth: 5,
        output_fraction: 0.15,
        seed,
    });
    let sdf = attach_sdf(
        &netlist,
        &SdfGenConfig {
            seed: seed ^ 0xBEEF,
            ..SdfGenConfig::default()
        },
    );
    Arc::new(CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap())
}

/// Plenty of attempts, no backoff sleeps: chaos tests probe equivalence,
/// not wall-clock recovery pacing.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        backoff_base: 0.0,
        backoff_factor: 2.0,
        backoff_cap: 0.0,
    }
}

fn test_config() -> SimConfig {
    SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(400)
        .with_retry_policy(fast_retry())
}

fn arm(device: &Device, plan: &FaultPlan, device_index: usize) -> Arc<FaultInjector> {
    let inj = Arc::new(FaultInjector::new(plan, device_index));
    device.arm_faults(Some(Arc::clone(&inj)));
    inj
}

/// Baseline and fault-injected runs share one workload shape.
fn workload(seed: u64) -> (Arc<CircuitGraph>, Vec<gatspi_wave::Waveform>, i32) {
    let graph = wide_graph(seed % 7);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(12, 400, 0.4, seed ^ 0x55),
    );
    (graph, stimuli, 12 * 400)
}

/// Runs streaming VCD + spill and returns the observable outputs.
fn run_streamed(
    session: &Session,
    stimuli: &[gatspi_wave::Waveform],
    duration: i32,
) -> (SimResult, Vec<u8>) {
    let opts = RunOptions::default()
        .with_waveform_spill()
        .with_segment_windows(2);
    session
        .run_to_vcd(stimuli, duration, &opts, Vec::new())
        .unwrap()
}

fn assert_same_outputs(a: &SimResult, b: &SimResult) {
    assert!(
        a.saif.diff(&b.saif).is_empty(),
        "SAIF diverged under fault injection: {:?}",
        a.saif.diff(&b.saif).first()
    );
    assert_eq!(
        a.toggle_counts_slice(),
        b.toggle_counts_slice(),
        "toggle counts diverged"
    );
}

fn chaos_roundtrip(seed: u64) {
    let (graph, stimuli, duration) = workload(seed);
    let session = Session::new(Arc::clone(&graph), test_config());
    let (clean, clean_vcd) = run_streamed(&session, &stimuli, duration);

    let plan = FaultPlan::seeded(seed, 40);
    let inj = arm(session.device(), &plan, 0);
    let (chaotic, chaotic_vcd) = run_streamed(&session, &stimuli, duration);
    session.device().arm_faults(None);

    assert_eq!(
        clean_vcd, chaotic_vcd,
        "streamed VCD diverged (seed {seed})"
    );
    assert_same_outputs(&clean, &chaotic);
    for s in 0..graph.n_signals() {
        assert_eq!(
            clean.waveform(s).unwrap(),
            chaotic.waveform(s).unwrap(),
            "spilled waveform {s} diverged (seed {seed})"
        );
    }
    // Every injected non-stall fault is transient, so each one must show
    // up as a successful segment retry — and nothing else may.
    assert_eq!(
        chaotic.app_profile.faults_injected, chaotic.app_profile.segment_retries,
        "every transient fault retries exactly once (seed {seed})"
    );
    assert!(
        chaotic.app_profile.faults_injected + plan.len() as u64 >= inj.injected(),
        "stalls aside, fired faults surface in telemetry (seed {seed})"
    );
    assert_eq!(chaotic.app_profile.failovers, 0);

    // A follow-up run on the disarmed session reproduces the baseline:
    // retries left no residue in the scratch pool or plan cache.
    let (after, after_vcd) = run_streamed(&session, &stimuli, duration);
    assert_eq!(
        clean_vcd, after_vcd,
        "post-chaos session is poisoned (seed {seed})"
    );
    assert_same_outputs(&clean, &after);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Randomized transient fault schedules (launch, allocation, transfer,
    /// stalls) leave serial/segmented/streaming outputs bit-identical.
    #[test]
    fn randomized_fault_schedules_are_output_invariant(seed in 0u64..10_000) {
        chaos_roundtrip(seed);
    }

    /// The same property over the multi-GPU path: every device runs its
    /// own randomized transient schedule; the streamed VCD, SAIF and
    /// spilled waveforms still match the fault-free fleet bit-for-bit.
    #[test]
    fn randomized_fault_schedules_are_output_invariant_multi_gpu(seed in 0u64..10_000) {
        let (graph, stimuli, duration) = workload(seed);
        let session = Session::new(Arc::clone(&graph), test_config());
        let opts = RunOptions::default().with_waveform_spill();

        let gpus = MultiGpu::new(DeviceSpec::v100(), 3, 1 << 18);
        let (clean, clean_vcd) = session
            .run_multi_gpu_to_vcd(&gpus, &stimuli, duration, &opts, Vec::new())
            .unwrap();

        for d in 0..gpus.len() {
            arm(gpus.device(d), &FaultPlan::seeded(seed ^ d as u64, 30), d);
        }
        let (chaotic, chaotic_vcd) = session
            .run_multi_gpu_to_vcd(&gpus, &stimuli, duration, &opts, Vec::new())
            .unwrap();
        for d in 0..gpus.len() {
            gpus.device(d).arm_faults(None);
        }

        prop_assert_eq!(clean_vcd, chaotic_vcd, "multi-GPU streamed VCD diverged");
        assert_same_outputs(&clean, &chaotic);
        prop_assert_eq!(
            chaotic.app_profile.faults_injected,
            chaotic.app_profile.segment_retries
        );
        prop_assert_eq!(chaotic.app_profile.failovers, 0);
    }

    /// Incremental (cone-restricted) re-simulation under randomized
    /// transient faults reproduces the fault-free delta run exactly.
    #[test]
    fn randomized_fault_schedules_keep_incremental_runs_identical(seed in 0u64..10_000) {
        let (graph, stimuli, duration) = workload(seed);
        let session = Session::new(Arc::clone(&graph), test_config());
        let opts = RunOptions::default().with_waveform_spill();
        let full = session.run_with(&stimuli, duration, &opts).unwrap();
        let changed = [0usize, (graph.n_gates() / 2).max(1) - 1];

        let clean = session
            .run_incremental(&full, &changed, &stimuli, duration, &opts)
            .unwrap();

        arm(session.device(), &FaultPlan::seeded(seed ^ 0xD17A, 24), 0);
        let chaotic = session
            .run_incremental(&full, &changed, &stimuli, duration, &opts)
            .unwrap();
        session.device().arm_faults(None);

        assert_same_outputs(&clean, &chaotic);
        for s in 0..graph.n_signals() {
            prop_assert_eq!(
                clean.waveform(s).unwrap(),
                chaotic.waveform(s).unwrap(),
                "incremental waveform {} diverged", s
            );
        }
        prop_assert_eq!(
            chaotic.app_profile.faults_injected,
            chaotic.app_profile.segment_retries
        );
    }
}

/// A device dying permanently mid-run on a multi-GPU fleet: the dead
/// device's shard fails over to the survivors and the run completes with
/// outputs bit-identical to a fault-free fleet — the ISSUE's acceptance
/// scenario.
#[test]
fn permanent_mid_run_device_loss_fails_over_bit_identical() {
    let (graph, stimuli, duration) = workload(3);
    let session = Session::new(Arc::clone(&graph), test_config());
    let opts = RunOptions::default().with_waveform_spill();

    let gpus = MultiGpu::new(DeviceSpec::v100(), 3, 1 << 18);
    let (clean, clean_vcd) = session
        .run_multi_gpu_to_vcd(&gpus, &stimuli, duration, &opts, Vec::new())
        .unwrap();

    // Device 1 uploads and launches its shard, then dies for good at its
    // third readback — a permanent mid-run loss with work already done.
    let plan = FaultPlan::new().with_fault(FaultSite::Transfer, 2, true);
    let inj = arm(gpus.device(1), &plan, 1);
    let (degraded, degraded_vcd) = session
        .run_multi_gpu_to_vcd(&gpus, &stimuli, duration, &opts, Vec::new())
        .unwrap();
    gpus.device(1).arm_faults(None);

    assert!(inj.is_failed(), "the permanent fault latched the device");
    assert_eq!(clean_vcd, degraded_vcd, "failover changed the streamed VCD");
    assert_same_outputs(&clean, &degraded);
    for s in 0..graph.n_signals() {
        assert_eq!(
            clean.waveform(s).unwrap(),
            degraded.waveform(s).unwrap(),
            "failover changed spilled waveform {s}"
        );
    }
    assert!(
        degraded.app_profile.failovers >= 1,
        "degraded-mode telemetry must report the failover"
    );
    assert!(degraded.app_profile.faults_injected >= 1);

    // Post-hoc SAIF from a degraded fleet too: device 0 dies mid-upload.
    let gpus2 = MultiGpu::new(DeviceSpec::v100(), 3, 1 << 18);
    let plan2 = FaultPlan::new().with_fault(FaultSite::Alloc, 20, true);
    arm(gpus2.device(0), &plan2, 0);
    let rerun = session.run_multi_gpu(&gpus2, &stimuli, duration).unwrap();
    assert_same_outputs(&clean, &rerun);
    assert!(rerun.app_profile.failovers >= 1);
}

/// With every device permanently dead there is no survivor to fail over
/// to: the run must report the device fault instead of hanging or
/// unwinding the process.
#[test]
fn multi_gpu_with_no_survivors_reports_the_fault() {
    let (graph, stimuli, duration) = workload(5);
    let session = Session::new(graph, test_config());
    let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 18);
    for d in 0..gpus.len() {
        arm(
            gpus.device(d),
            &FaultPlan::new().with_fault(FaultSite::Launch, 0, true),
            d,
        );
    }
    match session.run_multi_gpu(&gpus, &stimuli, duration) {
        Err(CoreError::DeviceFault {
            kind: FaultKind::Launch,
            retryable: false,
            ..
        }) => {}
        other => panic!("expected a permanent launch fault, got {other:?}"),
    }
}

/// A fault that defeats the retry budget fails the run with a structured
/// error — and leaves the session fully usable: the next run reproduces a
/// fresh session's output bit-for-bit (scratch pool, plan cache and dump
/// machinery are un-poisoned).
#[test]
fn session_survives_faulted_runs_unpoisoned() {
    let (graph, stimuli, duration) = workload(7);
    let cfg = test_config().with_retry_policy(RetryPolicy::none());
    let session = Session::new(Arc::clone(&graph), cfg);
    let (clean, clean_vcd) = run_streamed(&session, &stimuli, duration);

    // Permanent allocation fault: dies during stimulus upload.
    arm(
        session.device(),
        &FaultPlan::new().with_fault(FaultSite::Alloc, 10, true),
        0,
    );
    match session.run(&stimuli, duration) {
        Err(CoreError::DeviceFault {
            device: 0,
            kind: FaultKind::Alloc,
            retryable: false,
        }) => {}
        other => panic!("expected a permanent alloc fault, got {other:?}"),
    }

    // Transient transfer fault with a single-attempt policy: retries are
    // exhausted immediately and the error says so.
    arm(
        session.device(),
        &FaultPlan::new().with_fault(FaultSite::Transfer, 0, false),
        0,
    );
    let spill = RunOptions::default().with_waveform_spill();
    match session.run_with(&stimuli, duration, &spill) {
        Err(CoreError::DeviceFault {
            kind: FaultKind::Transfer,
            retryable: true,
            ..
        }) => {}
        other => panic!("expected exhausted transfer retries, got {other:?}"),
    }

    session.device().arm_faults(None);
    let (after, after_vcd) = run_streamed(&session, &stimuli, duration);
    assert_eq!(clean_vcd, after_vcd, "failed runs poisoned the session");
    assert_same_outputs(&clean, &after);
}

/// A caller-supplied streaming sink that panics mid-run must fail that
/// run with a structured error — isolated at the segment boundary, not
/// aborting the process — and leave the session usable.
#[test]
fn panicking_user_sink_fails_the_run_not_the_process() {
    struct Grenade;
    impl WaveformSink for Grenade {
        fn waveform(&mut self, _signal: usize, _info: &WindowInfo, _raw: &[i32]) {
            panic!("user sink exploded");
        }
    }
    let (graph, stimuli, duration) = workload(9);
    let session = Session::new(Arc::clone(&graph), test_config());
    let mut sink = Grenade;
    match session.run_streaming(&stimuli, duration, &RunOptions::default(), &mut sink) {
        Err(CoreError::DeviceFault {
            kind: FaultKind::Worker,
            retryable: false,
            ..
        }) => {}
        other => panic!("expected an isolated worker fault, got {other:?}"),
    }
    // The session shrugs it off.
    session.run(&stimuli, duration).unwrap();
}

/// Rotating-seed chaos run: CI sets `GATSPI_CHAOS_SEED` to sweep fresh
/// schedules (one per pipeline run); the seed is printed so any failure
/// is replayable by exporting the same value locally.
#[test]
fn rotating_seed_chaos_roundtrip() {
    let seed = std::env::var("GATSPI_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    println!("GATSPI_CHAOS_SEED={seed}");
    chaos_roundtrip(seed);
}
