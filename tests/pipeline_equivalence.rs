//! Pipelined-executor equivalence: the overlapped publish pipeline
//! (`pipeline_depth = 2`, the default — folded store-pass publication,
//! slab-partitioned scratch columns, publish worker overlapping later
//! levels' launches) must produce **bit-identical** results to a forced
//! serial run (`pipeline_depth = 1`) and to the event-driven reference —
//! across plain windowed runs, segmented runs, streaming sinks,
//! multi-GPU sharding (with and without spill) and the pooled
//! chase-the-cursor phase driver.

use std::sync::Arc;

use gatspi_core::{
    RunOptions, Session, SimConfig, SimResult, Speculation, WaveformSink, WindowInfo,
};
use gatspi_gpu::{DeviceSpec, MultiGpu};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{CellLibrary, NetlistBuilder};
use gatspi_refsim::{EventSimulator, RefConfig};
use gatspi_wave::Waveform;
use gatspi_workloads::circuits::{random_logic, RandomLogicConfig};
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};
use proptest::prelude::*;

/// Deep, narrow chain: thousands of one-gate levels exercise the fused
/// (phased-launch) pipeline where the overlap happens inside one launch.
fn deep_chain(depth: usize) -> Arc<CircuitGraph> {
    let mut b = NetlistBuilder::new("deep", CellLibrary::industry_mini());
    let mut prev = b.add_input("a").unwrap();
    for i in 0..depth {
        let net = b.add_net(&format!("n{i}")).unwrap();
        b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
        prev = net;
    }
    b.mark_output(prev);
    Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
}

/// Wide random logic with SDF delays: multi-gate levels exercise the
/// classic two-launch path with parallel publish.
fn wide_graph(seed: u64) -> Arc<CircuitGraph> {
    let netlist = random_logic(&RandomLogicConfig {
        gates: 300,
        inputs: 16,
        depth: 5,
        output_fraction: 0.1,
        seed,
    });
    let sdf = attach_sdf(
        &netlist,
        &SdfGenConfig {
            seed: seed ^ 0xBEEF,
            ..SdfGenConfig::default()
        },
    );
    Arc::new(CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap())
}

fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert!(
        a.saif.diff(&b.saif).is_empty(),
        "{what}: SAIF diverged between serial and pipelined runs"
    );
    assert_eq!(
        a.toggle_counts_slice(),
        b.toggle_counts_slice(),
        "{what}: toggle counts diverged"
    );
}

#[test]
fn deep_fused_chain_serial_matches_overlapped() {
    let graph = deep_chain(600);
    let toggles: Vec<i32> = (1..12).map(|i| i * 700).collect();
    let stim = vec![Waveform::from_toggles(false, &toggles)];
    let duration = 10_000;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(100);
    let run = |depth: usize| {
        Session::new(Arc::clone(&graph), cfg.clone().with_pipeline_depth(depth))
            .run_with(
                &stim,
                duration,
                &RunOptions::default().with_waveform_spill(),
            )
            .unwrap()
    };
    let serial = run(1);
    let overlapped = run(2);
    assert_bit_identical(&serial, &overlapped, "deep fused chain");
    // Bit-identical waveforms too, via the durable spill copies.
    for s in 0..graph.n_signals() {
        assert_eq!(
            serial.waveform(s).unwrap(),
            overlapped.waveform(s).unwrap(),
            "signal {s}"
        );
    }
}

#[test]
fn wide_levels_serial_matches_overlapped_and_refsim() {
    let graph = wide_graph(7);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(24, 400, 0.4, 11),
    );
    let duration = 24 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(8)
        .with_window_align(400);
    let run = |depth: usize| {
        Session::new(Arc::clone(&graph), cfg.clone().with_pipeline_depth(depth))
            .run(&stimuli, duration)
            .unwrap()
    };
    let serial = run(1);
    let overlapped = run(2);
    assert_bit_identical(&serial, &overlapped, "wide levels");

    // And both agree with the event-driven reference.
    let r = EventSimulator::new(
        &graph,
        RefConfig {
            record_waveforms: false,
            ..RefConfig::default()
        },
    )
    .run(&stimuli, duration)
    .unwrap();
    assert!(
        overlapped.saif.diff(&r.saif).is_empty(),
        "pipelined run diverged from refsim"
    );
}

#[test]
fn segmented_run_serial_matches_overlapped() {
    let graph = deep_chain(40);
    let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
    let stim = vec![Waveform::from_toggles(false, &toggles)];
    let cfg = SimConfig::small()
        .with_cycle_parallelism(16)
        .with_window_align(10);
    let run = |depth: usize| {
        Session::new(Arc::clone(&graph), cfg.clone().with_pipeline_depth(depth))
            .run_with(
                &stim,
                1500,
                &RunOptions::default()
                    .with_segment_windows(4)
                    .with_waveform_spill(),
            )
            .unwrap()
    };
    let serial = run(1);
    let overlapped = run(2);
    assert!(serial.segments() > 1, "test must exercise segmentation");
    assert_eq!(serial.segments(), overlapped.segments());
    assert_bit_identical(&serial, &overlapped, "segmented run");
    for s in 0..graph.n_signals() {
        assert_eq!(
            serial.waveform(s).unwrap(),
            overlapped.waveform(s).unwrap(),
            "signal {s} across segments"
        );
    }
}

/// Records every sink delivery so two runs can be compared call-for-call.
#[derive(Default)]
struct Recorder {
    calls: Vec<(usize, usize, usize, Vec<i32>)>,
}

impl WaveformSink for Recorder {
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
        self.calls
            .push((signal, info.window, info.segment, raw.to_vec()));
    }
}

#[test]
fn streaming_sink_serial_matches_overlapped() {
    let graph = wide_graph(13);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.5, 23),
    );
    let duration = 16 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(8)
        .with_window_align(400);
    let run = |depth: usize| {
        let mut sink = Recorder::default();
        let r = Session::new(Arc::clone(&graph), cfg.clone().with_pipeline_depth(depth))
            .run_streaming(
                &stimuli,
                duration,
                &RunOptions::default().with_segment_windows(3),
                &mut sink,
            )
            .unwrap();
        (r, sink)
    };
    let (serial, serial_sink) = run(1);
    let (overlapped, overlapped_sink) = run(2);
    assert_bit_identical(&serial, &overlapped, "streaming run");
    assert!(!serial_sink.calls.is_empty());
    assert_eq!(
        serial_sink.calls, overlapped_sink.calls,
        "sink must see identical (signal, window, segment, raw) sequences"
    );
}

/// A fused group wide enough to engage the pooled phase driver (widest
/// phase ≥ the device's inline threshold, so the chase-the-cursor worker
/// protocol — not the serial fast path — runs the phases): the whole
/// design forced into one phased launch by a large fuse-threshold
/// override must stay bit-identical across pipeline depths and match the
/// event-driven reference, including via the durable spill copies.
#[test]
fn wide_fused_group_pooled_driver_matches_serial_and_refsim() {
    let netlist = random_logic(&RandomLogicConfig {
        gates: 3000,
        inputs: 32,
        depth: 4,
        output_fraction: 0.1,
        seed: 91,
    });
    let graph = Arc::new(CircuitGraph::build(&netlist, None, &GraphOptions::default()).unwrap());
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(8, 400, 0.4, 17),
    );
    let duration = 8 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(8)
        .with_window_align(400);
    let opts = RunOptions::default()
        .with_fuse_threshold(1 << 20)
        .with_waveform_spill();
    // An explicit 4-worker device: the pooled driver (and the parallel
    // spill drain) must engage even when the test host has few cores.
    let run = |depth: usize| {
        let sim_cfg = cfg.clone().with_pipeline_depth(depth);
        let device = Arc::new(gatspi_gpu::Device::with_workers(
            sim_cfg.device.clone(),
            sim_cfg.memory_words,
            4,
        ));
        Session::with_device(Arc::clone(&graph), sim_cfg, device)
            .run_with(&stimuli, duration, &opts)
            .unwrap()
    };
    let serial = run(1);
    let overlapped = run(2);
    assert_eq!(
        serial.app_profile.launches, serial.app_profile.fused_launches,
        "every launch must be a fused phased launch"
    );
    assert!(serial.app_profile.fused_launches >= 1);
    assert_bit_identical(&serial, &overlapped, "wide fused group");
    for s in 0..graph.n_signals() {
        assert_eq!(
            serial.waveform(s).unwrap(),
            overlapped.waveform(s).unwrap(),
            "signal {s}"
        );
    }

    let r = EventSimulator::new(
        &graph,
        RefConfig {
            record_waveforms: false,
            ..RefConfig::default()
        },
    )
    .run(&stimuli, duration)
    .unwrap();
    assert!(
        overlapped.saif.diff(&r.saif).is_empty(),
        "pooled phase driver diverged from refsim"
    );
}

#[test]
fn multi_gpu_serial_matches_overlapped() {
    let graph = wide_graph(29);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.35, 31),
    );
    let duration = 16 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(400);
    let run = |depth: usize| {
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 18);
        Session::new(Arc::clone(&graph), cfg.clone().with_pipeline_depth(depth))
            .run_multi_gpu(&gpus, &stimuli, duration)
            .unwrap()
    };
    let serial = run(1);
    let overlapped = run(2);
    assert_bit_identical(&serial, &overlapped, "multi-GPU run");
}

/// Multi-GPU runs with waveform spill: each shard's batch is routed
/// through the spill sink and the windows merge in time order, so
/// `waveform()` works on multi-GPU results and matches a single-device
/// spilled run bit for bit — in both pipeline modes.
#[test]
fn multi_gpu_spill_extracts_waveforms() {
    let graph = wide_graph(43);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.35, 57),
    );
    let duration = 16 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(400);
    // The single-device reference drains through an explicit 4-worker
    // device, so the parallel drain path is compared against the
    // multi-GPU shards' (single-worker) serial drains.
    let single_cfg = cfg.clone().with_cycle_parallelism(8);
    let single_dev = Arc::new(gatspi_gpu::Device::with_workers(
        single_cfg.device.clone(),
        single_cfg.memory_words,
        4,
    ));
    let single = Session::with_device(Arc::clone(&graph), single_cfg, single_dev)
        .run_with(
            &stimuli,
            duration,
            &RunOptions::default().with_waveform_spill(),
        )
        .unwrap();
    for depth in [1usize, 2] {
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 18);
        let multi = Session::new(Arc::clone(&graph), cfg.clone().with_pipeline_depth(depth))
            .run_multi_gpu_with(
                &gpus,
                &stimuli,
                duration,
                &RunOptions::default().with_waveform_spill(),
            )
            .unwrap();
        assert!(multi.app_profile.d2h_bytes > 0, "spill read waveforms back");
        assert!(multi.app_profile.d2h_batches > 0);
        assert!(multi.app_profile.readback_seconds > 0.0);
        for s in 0..graph.n_signals() {
            assert_eq!(
                multi.waveform(s).unwrap(),
                single.waveform(s).unwrap(),
                "signal {s} (pipeline depth {depth})"
            );
        }
    }
}

// --- Speculative single-pass vs two-pass ("simulate twice") equivalence.
//
// `Speculation::Off` is the paper's Fig. 5 reference schedule; `On`/`Auto`
// replace the unconditional count pass with predicted reservations plus
// exact repair. The two allocation strategies must be bit-identical on
// every execution path.

#[test]
fn speculative_matches_two_pass_on_deep_fused_chain() {
    let graph = deep_chain(600);
    let toggles: Vec<i32> = (1..12).map(|i| i * 700).collect();
    let stim = vec![Waveform::from_toggles(false, &toggles)];
    let duration = 10_000;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(100);
    let run = |spec: Speculation| {
        Session::new(Arc::clone(&graph), cfg.clone().with_speculation(spec))
            .run_with(
                &stim,
                duration,
                &RunOptions::default().with_waveform_spill(),
            )
            .unwrap()
    };
    let two_pass = run(Speculation::Off);
    let spec = run(Speculation::Auto);
    assert_bit_identical(&two_pass, &spec, "deep fused chain (speculation)");
    for s in 0..graph.n_signals() {
        assert_eq!(
            two_pass.waveform(s).unwrap(),
            spec.waveform(s).unwrap(),
            "signal {s}"
        );
    }
    assert!(
        spec.app_profile.speculative_hit_rate > 0.0,
        "the speculative path must actually have run"
    );
    assert_eq!(two_pass.app_profile.speculative_hit_rate, 0.0);
}

#[test]
fn speculative_matches_two_pass_on_wide_classic_levels() {
    let graph = wide_graph(7);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(24, 400, 0.4, 11),
    );
    let duration = 24 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(8)
        .with_window_align(400)
        .with_fuse_threshold(0);
    let run = |spec: Speculation| {
        Session::new(Arc::clone(&graph), cfg.clone().with_speculation(spec))
            .run(&stimuli, duration)
            .unwrap()
    };
    let two_pass = run(Speculation::Off);
    let spec = run(Speculation::On);
    assert_bit_identical(&two_pass, &spec, "wide classic levels (speculation)");
    assert!(
        spec.app_profile.launches < two_pass.app_profile.launches,
        "a well-predicted single pass must launch less than simulate-twice"
    );
}

#[test]
fn speculative_matches_two_pass_under_segmentation() {
    let graph = deep_chain(40);
    let toggles: Vec<i32> = (1..150).map(|i| i * 10 + 5).collect();
    let stim = vec![Waveform::from_toggles(false, &toggles)];
    let cfg = SimConfig::small()
        .with_cycle_parallelism(16)
        .with_window_align(10);
    let run = |spec: Speculation| {
        Session::new(Arc::clone(&graph), cfg.clone().with_speculation(spec))
            .run_with(
                &stim,
                1500,
                &RunOptions::default()
                    .with_segment_windows(4)
                    .with_waveform_spill(),
            )
            .unwrap()
    };
    let two_pass = run(Speculation::Off);
    let spec = run(Speculation::Auto);
    assert!(two_pass.segments() > 1, "test must exercise segmentation");
    assert_bit_identical(&two_pass, &spec, "segmented run (speculation)");
    for s in 0..graph.n_signals() {
        assert_eq!(
            two_pass.waveform(s).unwrap(),
            spec.waveform(s).unwrap(),
            "signal {s} across segments"
        );
    }
}

#[test]
fn speculative_matches_two_pass_through_streaming_sink() {
    let graph = wide_graph(13);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.5, 23),
    );
    let duration = 16 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(8)
        .with_window_align(400);
    let run = |spec: Speculation| {
        let mut sink = Recorder::default();
        let r = Session::new(Arc::clone(&graph), cfg.clone().with_speculation(spec))
            .run_streaming(
                &stimuli,
                duration,
                &RunOptions::default().with_segment_windows(3),
                &mut sink,
            )
            .unwrap();
        (r, sink)
    };
    let (two_pass, two_pass_sink) = run(Speculation::Off);
    let (spec, spec_sink) = run(Speculation::Auto);
    assert_bit_identical(&two_pass, &spec, "streaming run (speculation)");
    assert!(!two_pass_sink.calls.is_empty());
    assert_eq!(
        two_pass_sink.calls, spec_sink.calls,
        "sink must see identical (signal, window, segment, raw) sequences"
    );
}

#[test]
fn speculative_matches_two_pass_on_multi_gpu() {
    let graph = wide_graph(29);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.35, 31),
    );
    let duration = 16 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(400);
    let run = |spec: Speculation| {
        let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 18);
        Session::new(Arc::clone(&graph), cfg.clone().with_speculation(spec))
            .run_multi_gpu(&gpus, &stimuli, duration)
            .unwrap()
    };
    let two_pass = run(Speculation::Off);
    let spec = run(Speculation::Auto);
    assert_bit_identical(&two_pass, &spec, "multi-GPU run (speculation)");
}

#[test]
fn speculative_matches_two_pass_on_incremental_rerun() {
    let graph = wide_graph(51);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.4, 41),
    );
    let duration = 16 * 400;
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(400);
    let changed = vec![5usize, 40];
    let run = |spec: Speculation| {
        let sim = Session::new(Arc::clone(&graph), cfg.clone().with_speculation(spec));
        let opts = RunOptions::default().with_waveform_spill();
        // The full run populates the session's extent history; the cone
        // sub-plan seeds from it, so the delta run speculates warm.
        let full = sim.run_with(&stimuli, duration, &opts).unwrap();
        sim.run_incremental(&full, &changed, &stimuli, duration, &opts)
            .unwrap()
    };
    let two_pass = run(Speculation::Off);
    let spec = run(Speculation::Auto);
    assert_bit_identical(&two_pass, &spec, "incremental rerun (speculation)");
    for s in 0..graph.n_signals() {
        assert_eq!(
            two_pass.waveform(s).unwrap(),
            spec.waveform(s).unwrap(),
            "signal {s} after the delta run"
        );
    }
}

/// Poisoned extent history — a 2-word budget for every gate — forces an
/// overflow on essentially every toggling (gate, window) thread, so the
/// final output is produced almost entirely by the exact repair launches.
/// The result must still be bit-identical to simulate-twice: repair alone
/// reproduces the reference output.
#[test]
fn forced_overflow_repair_reproduces_two_pass_exactly() {
    let graph = wide_graph(67);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.5, 73),
    );
    let duration = 16 * 400;
    for fuse in [0usize, 4096] {
        let cfg = SimConfig::small()
            .with_cycle_parallelism(8)
            .with_window_align(400)
            .with_fuse_threshold(fuse);
        let two_pass = Session::new(
            Arc::clone(&graph),
            cfg.clone().with_speculation(Speculation::Off),
        )
        .run_with(
            &stimuli,
            duration,
            &RunOptions::default().with_waveform_spill(),
        )
        .unwrap();
        let sim = Session::new(
            Arc::clone(&graph),
            cfg.clone().with_speculation(Speculation::On),
        );
        sim.seed_extent_history(2);
        let spec = sim
            .run_with(
                &stimuli,
                duration,
                &RunOptions::default().with_waveform_spill(),
            )
            .unwrap();
        assert!(
            spec.app_profile.overflow_repairs > 0,
            "fuse {fuse}: tiny seeded budgets must overflow"
        );
        assert_bit_identical(&two_pass, &spec, "forced overflow");
        for s in 0..graph.n_signals() {
            assert_eq!(
                two_pass.waveform(s).unwrap(),
                spec.waveform(s).unwrap(),
                "fuse {fuse}: signal {s} from repair"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Random design + random delays + random stimulus: the overlapped
    /// pipeline must stay bit-identical to the forced-serial pipeline and
    /// to the event-driven reference.
    #[test]
    fn pipelined_executor_bit_identical_on_random_designs(
        seed in 0u64..5000,
        gates in 30usize..180,
        depth in 3usize..9,
        toggle_prob in 0.05f64..0.9,
        parallelism in 1usize..6,
        fuse_sel in 0usize..3,
    ) {
        // Unfused / small fused groups / default fusion.
        let fuse = [0usize, 64, 4096][fuse_sel];
        let netlist = random_logic(&RandomLogicConfig {
            gates,
            inputs: 10,
            depth,
            output_fraction: 0.1,
            seed,
        });
        let sdf = attach_sdf(&netlist, &SdfGenConfig {
            seed: seed ^ 0xF00D,
            ..SdfGenConfig::default()
        });
        let graph = Arc::new(
            CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap(),
        );
        let cycle = 400;
        let cycles = 16usize;
        let stimuli = generate(
            graph.primary_inputs().len(),
            &StimulusConfig::random(cycles, cycle, toggle_prob, seed ^ 0x77),
        );
        let duration = cycle * cycles as i32;
        let cfg = SimConfig::small()
            .with_cycle_parallelism(parallelism)
            .with_window_align(cycle)
            .with_fuse_threshold(fuse);
        let run = |pd: usize| {
            Session::new(Arc::clone(&graph), cfg.clone().with_pipeline_depth(pd))
                .run(&stimuli, duration)
                .unwrap()
        };
        let serial = run(1);
        let overlapped = run(2);
        prop_assert!(serial.saif.diff(&overlapped.saif).is_empty(),
            "serial vs overlapped SAIF diverged");
        prop_assert_eq!(serial.toggle_counts_slice(), overlapped.toggle_counts_slice());

        // The runs above speculate (Auto default); the two-pass reference
        // schedule must agree bit for bit.
        let two_pass = Session::new(
            Arc::clone(&graph),
            cfg.clone().with_speculation(Speculation::Off),
        )
        .run(&stimuli, duration)
        .unwrap();
        prop_assert!(two_pass.saif.diff(&overlapped.saif).is_empty(),
            "speculative vs two-pass SAIF diverged");
        prop_assert_eq!(two_pass.toggle_counts_slice(), overlapped.toggle_counts_slice());

        let r = EventSimulator::new(&graph, RefConfig {
            record_waveforms: false,
            ..RefConfig::default()
        })
        .run(&stimuli, duration)
        .unwrap();
        prop_assert!(overlapped.saif.diff(&r.saif).is_empty(),
            "pipelined run diverged from refsim");
    }
}
