//! Streaming-sink equivalence: VCD and SAIF written *during* the run
//! (bounded memory, via [`VcdSink`]/[`SaifSink`] over the raw Fig. 3
//! device encoding) must be bit-identical to the post-hoc whole-document
//! writers fed from [`SimResult::waveform`] — across serial, segmented
//! and multi-GPU runs, including quiet signals and `INIT_ONE_MARKER`
//! windows — and the VCD sink's peak buffering must scale with one
//! window, not the run.

use std::sync::Arc;

use gatspi_core::{CoreError, RunOptions, Session, SimConfig, SimResult, VcdSink};
use gatspi_gpu::{DeviceSpec, MultiGpu};
use gatspi_graph::{CircuitGraph, GraphOptions, SignalId};
use gatspi_netlist::{CellLibrary, NetlistBuilder};
use gatspi_wave::saif::SaifDocument;
use gatspi_wave::{vcd, Waveform, INIT_ONE_MARKER};
use gatspi_workloads::circuits::{random_logic, RandomLogicConfig};
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

/// Wide random logic with SDF delays (multi-gate levels, MSI activity).
fn wide_graph(seed: u64) -> Arc<CircuitGraph> {
    let netlist = random_logic(&RandomLogicConfig {
        gates: 300,
        inputs: 16,
        depth: 5,
        output_fraction: 0.1,
        seed,
    });
    let sdf = attach_sdf(
        &netlist,
        &SdfGenConfig {
            seed: seed ^ 0xBEEF,
            ..SdfGenConfig::default()
        },
    );
    Arc::new(CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap())
}

/// Parses the streamed VCD and asserts every signal round-trips
/// bit-identical to the post-hoc stitched waveform (`result` must have
/// spill enabled). Declared-but-undumped signals parse as constant 0,
/// which is exactly what `waveform()` returns for floating signals.
fn assert_vcd_matches(graph: &CircuitGraph, result: &SimResult, text: &str) {
    let doc = vcd::parse(text).unwrap();
    for s in 0..graph.n_signals() {
        let name = graph.signal_name(SignalId(s as u32));
        assert_eq!(
            doc.signals[name],
            result.waveform(s).unwrap(),
            "signal {name} diverged between streamed VCD and post-hoc waveform"
        );
    }
}

/// The whole-document SAIF built from the run's stitched waveforms — the
/// reference the streaming accumulator must equal exactly.
fn posthoc_saif(graph: &CircuitGraph, result: &SimResult, duration: i32) -> SaifDocument {
    let named: Vec<(String, Waveform)> = (0..graph.n_signals())
        .filter(|&s| {
            let sid = SignalId(s as u32);
            graph.primary_inputs().contains(&sid) || graph.driver(sid).is_some()
        })
        .map(|s| {
            let sid = SignalId(s as u32);
            (
                graph.signal_name(sid).to_string(),
                result.waveform(s).unwrap(),
            )
        })
        .collect();
    SaifDocument::from_waveforms(
        graph.name(),
        duration,
        named.iter().map(|(n, w)| (n.as_str(), w)),
    )
}

#[test]
fn serial_streaming_vcd_and_saif_match_posthoc() {
    let graph = wide_graph(7);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.4, 11),
    );
    let duration = 16 * 400;
    let session = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_cycle_parallelism(8)
            .with_window_align(400),
    );
    let (result, bytes) = session
        .run_to_vcd(
            &stimuli,
            duration,
            &RunOptions::default().with_waveform_spill(),
            Vec::new(),
        )
        .unwrap();
    let text = String::from_utf8(bytes).unwrap();
    assert_vcd_matches(&graph, &result, &text);

    let (r2, saif) = session
        .run_to_saif(&stimuli, duration, &RunOptions::default())
        .unwrap();
    assert_eq!(
        saif,
        posthoc_saif(&graph, &result, duration),
        "streaming SAIF != post-hoc from_waveforms"
    );
    // And the output-path SAIF equals the kernel-side accumulation.
    assert_eq!(saif, r2.saif, "streaming SAIF != engine SAIF");
}

#[test]
fn segmented_streaming_matches_posthoc() {
    let graph = wide_graph(13);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.5, 23),
    );
    let duration = 16 * 400;
    let session = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_cycle_parallelism(8)
            .with_window_align(400),
    );
    let opts = RunOptions::default()
        .with_segment_windows(3)
        .with_waveform_spill();
    let (result, bytes) = session
        .run_to_vcd(&stimuli, duration, &opts, Vec::new())
        .unwrap();
    assert!(result.segments() > 1, "test must exercise segmentation");
    let text = String::from_utf8(bytes).unwrap();
    assert_vcd_matches(&graph, &result, &text);

    let (_, saif) = session.run_to_saif(&stimuli, duration, &opts).unwrap();
    assert_eq!(saif, posthoc_saif(&graph, &result, duration));
}

#[test]
fn multi_gpu_streaming_matches_posthoc() {
    let graph = wide_graph(29);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(16, 400, 0.35, 31),
    );
    let duration = 16 * 400;
    let session = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_cycle_parallelism(4)
            .with_window_align(400),
    );
    let gpus = MultiGpu::new(DeviceSpec::v100(), 3, 1 << 18);
    let opts = RunOptions::default().with_waveform_spill();
    let (multi, bytes) = session
        .run_multi_gpu_to_vcd(&gpus, &stimuli, duration, &opts, Vec::new())
        .unwrap();
    let text = String::from_utf8(bytes).unwrap();
    assert_vcd_matches(&graph, &multi, &text);

    let gpus2 = MultiGpu::new(DeviceSpec::v100(), 3, 1 << 18);
    let (_, saif) = session
        .run_multi_gpu_to_saif(&gpus2, &stimuli, duration, &RunOptions::default())
        .unwrap();
    assert_eq!(saif, posthoc_saif(&graph, &multi, duration));

    // The multi-GPU streamed VCD also equals a single-device run's.
    let (single, single_bytes) = session
        .run_to_vcd(&stimuli, duration, &opts, Vec::new())
        .unwrap();
    assert_eq!(
        text,
        String::from_utf8(single_bytes).unwrap(),
        "multi-GPU and single-device streamed VCD must be byte-identical"
    );
    assert!(single.saif.diff(&multi.saif).is_empty());
}

/// Quiet signals (never toggle) and signals that are high at window
/// starts (`INIT_ONE_MARKER` device windows) must stream correctly: no
/// spurious join changes, full-duration T1 for constant-high nets.
#[test]
fn quiet_and_init_one_marker_signals_roundtrip() {
    let mut b = NetlistBuilder::new("quiet", CellLibrary::industry_mini());
    let hi = b.add_input("hi").unwrap();
    let lo = b.add_input("lo").unwrap();
    let a = b.add_input("a").unwrap();
    let mut prev = a;
    for i in 0..6 {
        let net = b.add_net(&format!("n{i}")).unwrap();
        b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
        prev = net;
    }
    let y = b.add_output("y").unwrap();
    b.add_gate("uy", "AND2", &[prev, hi], y).unwrap();
    let z = b.add_output("z").unwrap();
    b.add_gate("uz", "OR2", &[prev, lo], z).unwrap();
    let graph = Arc::new(
        CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap(),
    );

    let duration = 1600;
    let toggles: Vec<i32> = (1..30).map(|i| i * 50 + 7).collect();
    let stimuli = vec![
        Waveform::constant(true),               // hi: INIT_ONE windows throughout
        Waveform::constant(false),              // lo: quiet
        Waveform::from_toggles(true, &toggles), // a: starts high, busy
    ];
    let session = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_cycle_parallelism(8)
            .with_window_align(200),
    );
    let (result, bytes) = session
        .run_to_vcd(
            &stimuli,
            duration,
            &RunOptions::default().with_waveform_spill(),
            Vec::new(),
        )
        .unwrap();
    // The constant-high input really is stored as INIT_ONE_MARKER windows.
    let raw = result.raw_window(hi.index(), 1).unwrap();
    assert_eq!(raw.first(), Some(&INIT_ONE_MARKER));

    let text = String::from_utf8(bytes).unwrap();
    assert_vcd_matches(&graph, &result, &text);
    assert_eq!(
        vcd::parse(&text).unwrap().signals["hi"],
        Waveform::constant(true)
    );

    let (_, saif) = session
        .run_to_saif(&stimuli, duration, &RunOptions::default())
        .unwrap();
    assert_eq!(saif, posthoc_saif(&graph, &result, duration));
    let hi_rec = &saif.nets["hi"];
    assert_eq!(hi_rec.tc, 0);
    assert_eq!(
        hi_rec.t1,
        i64::from(duration),
        "constant-high spans the run"
    );
    let lo_rec = &saif.nets["lo"];
    assert_eq!((lo_rec.tc, lo_rec.t0), (0, i64::from(duration)));
}

/// The VCD sink's peak buffering is one window's changes, not the whole
/// run's: with toggles spread uniformly over many windows, the peak must
/// stay near total/windows.
#[test]
fn vcd_sink_memory_bounded_by_one_window() {
    let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
    let mut prev = b.add_input("a").unwrap();
    for i in 0..30 {
        let net = b.add_net(&format!("n{i}")).unwrap();
        b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
        prev = net;
    }
    b.mark_output(prev);
    let graph = Arc::new(
        CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap(),
    );

    // 320 toggles spread evenly across 16 windows of 400 ticks.
    let windows = 16usize;
    let toggles: Vec<i32> = (0..320).map(|i| i * 20 + 3).collect();
    let stimuli = vec![Waveform::from_toggles(false, &toggles)];
    let duration = 400 * windows as i32;
    let session = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_cycle_parallelism(windows)
            .with_window_align(400),
    );
    let names: Vec<String> = (0..graph.n_signals())
        .map(|s| graph.signal_name(SignalId(s as u32)).to_string())
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut sink = VcdSink::new(Vec::new(), graph.name(), &name_refs).unwrap();
    session
        .run_streaming(&stimuli, duration, &RunOptions::default(), &mut sink)
        .unwrap();
    let peak = sink.peak_window_changes();
    let text = String::from_utf8(sink.finish().unwrap()).unwrap();
    let doc = vcd::parse(&text).unwrap();
    let total: usize = doc.signals.values().map(|w| w.toggle_count() + 1).sum();
    assert!(peak > 0 && total > 0);
    assert!(
        peak <= total.div_ceil(windows) * 2,
        "peak {peak} must scale with one of {windows} windows (total {total})"
    );
}

/// Writer failures mid-run surface as `CoreError::Io` from the
/// convenience entry point rather than disappearing.
#[test]
fn run_to_vcd_surfaces_writer_errors() {
    #[derive(Debug)]
    struct FailAfterHeader {
        writes: usize,
    }
    impl std::io::Write for FailAfterHeader {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writes += 1;
            if self.writes > 1 {
                Err(std::io::Error::other("disk full"))
            } else {
                Ok(buf.len())
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let graph = wide_graph(3);
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(8, 400, 0.5, 5),
    );
    let session = Session::new(Arc::clone(&graph), SimConfig::small());
    let err = session
        .run_to_vcd(
            &stimuli,
            8 * 400,
            &RunOptions::default().with_segment_windows(2),
            FailAfterHeader { writes: 0 },
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::Io { .. }), "got {err:?}");
}
