//! Cone-restricted incremental re-simulation equivalence: after resizing a
//! set of gates' delays (an ECO / optimizer iteration),
//! [`Session::run_incremental`] re-executes only the changed gates'
//! transitive fan-out against the previous run's spilled waveforms — and
//! must be **bit-identical** to a full re-simulation with the new delays:
//! same SAIF, same toggle counts, same stitched waveform for every signal,
//! across serial, segmented and streaming-sink executions, and for
//! randomized resize sets.

use std::sync::Arc;

use gatspi_core::{CoreError, RunOptions, Session, SimConfig, SimResult, WaveformSink, WindowInfo};
use gatspi_graph::{CircuitGraph, GraphOptions, SignalId};
use gatspi_netlist::{GateId, Netlist};
use gatspi_sdf::SdfFile;
use gatspi_wave::{Waveform, EOW};
use gatspi_workloads::circuits::{random_logic, RandomLogicConfig};
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

/// A generated design plus its annotation: the "tapeout" the ECO edits.
struct Design {
    netlist: Netlist,
    sdf: SdfFile,
}

fn design(seed: u64, gates: usize) -> Design {
    let netlist = random_logic(&RandomLogicConfig {
        gates,
        inputs: 12,
        depth: 8,
        output_fraction: 0.1,
        seed,
    });
    let sdf = attach_sdf(
        &netlist,
        &SdfGenConfig {
            seed: seed ^ 0xEC0,
            ..SdfGenConfig::default()
        },
    );
    Design { netlist, sdf }
}

/// Clones the SDF with the listed gates' IOPATH delays scaled by `factor` —
/// the delay-only edit (cell resize) the incremental path is built for.
fn resize_gates(d: &Design, changed: &[usize], factor: f64) -> SdfFile {
    let mut patched = d.sdf.clone();
    for &g in changed {
        let name = d.netlist.gate(GateId::from_index(g)).name();
        for cell in &mut patched.cells {
            if cell.instance.as_deref() == Some(name) {
                for p in &mut cell.iopaths {
                    for t in [&mut p.rise, &mut p.fall] {
                        let scale = |v: Option<f64>| v.map(|x| (x * factor).round().max(1.0));
                        t.min = scale(t.min);
                        t.typ = scale(t.typ);
                        t.max = scale(t.max);
                    }
                }
            }
        }
    }
    patched
}

fn graph_of(d: &Design, sdf: &SdfFile) -> Arc<CircuitGraph> {
    Arc::new(CircuitGraph::build(&d.netlist, Some(sdf), &GraphOptions::default()).unwrap())
}

/// Reference cone: fixpoint of "a gate reading an in-cone output is
/// in-cone" over the driver relation (independent of the engine's sweep).
fn transitive_fanout(graph: &CircuitGraph, changed: &[usize]) -> Vec<bool> {
    let mut cone = vec![false; graph.n_gates()];
    for &g in changed {
        cone[g] = true;
    }
    loop {
        let mut progress = false;
        for g in 0..graph.n_gates() {
            if cone[g] {
                continue;
            }
            let hit = graph
                .gate_fanin(g)
                .iter()
                .any(|&p| graph.driver(SignalId(p)).is_some_and(|d| cone[d]));
            if hit {
                cone[g] = true;
                progress = true;
            }
        }
        if !progress {
            return cone;
        }
    }
}

/// Every comparison the equivalence claim needs: SAIF records, per-signal
/// toggle counts, and the stitched full-duration waveform of each signal.
fn assert_bit_identical(graph: &CircuitGraph, full: &SimResult, inc: &SimResult, label: &str) {
    let diffs = inc.saif.diff(&full.saif);
    assert!(
        diffs.is_empty(),
        "{label}: {} SAIF diffs, first: {:?}",
        diffs.len(),
        diffs.first()
    );
    for s in 0..graph.n_signals() {
        assert_eq!(
            inc.toggle_count(s),
            full.toggle_count(s),
            "{label}: toggle count of signal {s}"
        );
        assert_eq!(
            inc.waveform(s).unwrap(),
            full.waveform(s).unwrap(),
            "{label}: waveform of signal {s}"
        );
    }
}

fn spill_opts() -> RunOptions {
    RunOptions::default().with_waveform_spill()
}

#[test]
fn incremental_matches_full_resim_exactly() {
    let d = design(11, 260);
    let changed = vec![30usize, 31, 97];
    let sdf1 = resize_gates(&d, &changed, 2.0);
    let graph0 = graph_of(&d, &d.sdf);
    let graph1 = graph_of(&d, &sdf1);
    let cycle = 100;
    let cycles = 24usize;
    let duration = cycle * cycles as i32;
    let stimuli = generate(
        graph0.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.6, 5),
    );
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(cycle);

    let sim0 = Session::new(Arc::clone(&graph0), cfg.clone());
    let r0 = sim0.run_with(&stimuli, duration, &spill_opts()).unwrap();

    let sim1 = Session::new(Arc::clone(&graph1), cfg);
    let full = sim1.run_with(&stimuli, duration, &spill_opts()).unwrap();
    let inc = sim1
        .run_incremental(&r0, &changed, &stimuli, duration, &spill_opts())
        .unwrap();
    assert_bit_identical(&graph1, &full, &inc, "serial");

    // The delta plan is cached under the changed-set signature: a repeat
    // iteration hits, and produces the same result again.
    let stats = sim1.plan_cache_stats();
    assert!(stats.cone_misses >= 1, "first delta run builds the plan");
    let inc2 = sim1
        .run_incremental(&r0, &changed, &stimuli, duration, &spill_opts())
        .unwrap();
    assert!(
        sim1.plan_cache_stats().cone_hits > stats.cone_hits,
        "repeat delta run hits the cone-plan cache"
    );
    assert_bit_identical(&graph1, &full, &inc2, "repeat");

    // Chained ECO: a second resize runs incrementally off the incremental
    // result (derived spills stay usable as the next iteration's baseline).
    let changed_b = vec![12usize, 130];
    let sdf2 = resize_gates(
        &Design {
            netlist: d.netlist.clone(),
            sdf: sdf1,
        },
        &changed_b,
        3.0,
    );
    let graph2 = graph_of(&d, &sdf2);
    let sim2 = Session::new(
        Arc::clone(&graph2),
        SimConfig::small().with_cycle_parallelism(4),
    );
    let full2 = sim2.run_with(&stimuli, duration, &spill_opts()).unwrap();
    let inc_chained = sim2
        .run_incremental(&inc, &changed_b, &stimuli, duration, &spill_opts())
        .unwrap();
    assert_bit_identical(&graph2, &full2, &inc_chained, "chained");
}

#[test]
fn incremental_matches_under_segmentation() {
    let d = design(23, 160);
    let changed = vec![40usize, 88];
    let sdf1 = resize_gates(&d, &changed, 2.5);
    let graph0 = graph_of(&d, &d.sdf);
    let graph1 = graph_of(&d, &sdf1);
    let cycle = 50;
    let cycles = 64usize;
    let duration = cycle * cycles as i32;
    let stimuli = generate(
        graph0.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.7, 9),
    );
    // An arena too small for all windows at once: both the baseline and
    // the delta run must segment (the delta run re-probes with OOM
    // halving — it has no full-run segment hint to start from).
    let cfg = SimConfig {
        memory_words: 6_000,
        ..SimConfig::small()
    }
    .with_cycle_parallelism(16)
    .with_window_align(cycle);

    let sim0 = Session::new(Arc::clone(&graph0), cfg.clone());
    let r0 = sim0.run_with(&stimuli, duration, &spill_opts()).unwrap();
    assert!(r0.segments() > 1, "baseline run should segment");

    let sim1 = Session::new(Arc::clone(&graph1), cfg);
    let full = sim1.run_with(&stimuli, duration, &spill_opts()).unwrap();
    let inc = sim1
        .run_incremental(&r0, &changed, &stimuli, duration, &spill_opts())
        .unwrap();
    assert_bit_identical(&graph1, &full, &inc, "segmented");

    // Forced segmentation via RunOptions agrees too.
    let inc_forced = sim1
        .run_incremental(
            &r0,
            &changed,
            &stimuli,
            duration,
            &spill_opts().with_segment_windows(3),
        )
        .unwrap();
    assert_bit_identical(&graph1, &full, &inc_forced, "forced-segmented");
}

/// Collects every streamed delivery for inspection.
#[derive(Default)]
struct Collect {
    got: Vec<(usize, usize, Vec<i32>)>,
}

impl WaveformSink for Collect {
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
        self.got.push((signal, info.window, raw.to_vec()));
    }
}

#[test]
fn incremental_streaming_delivers_exactly_the_cone() {
    let d = design(7, 200);
    let changed = vec![25usize, 61];
    let sdf1 = resize_gates(&d, &changed, 2.0);
    let graph0 = graph_of(&d, &d.sdf);
    let graph1 = graph_of(&d, &sdf1);
    let cycle = 80;
    let cycles = 16usize;
    let duration = cycle * cycles as i32;
    let stimuli = generate(
        graph0.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.6, 3),
    );
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(cycle);

    let sim0 = Session::new(Arc::clone(&graph0), cfg.clone());
    let r0 = sim0.run_with(&stimuli, duration, &spill_opts()).unwrap();
    let sim1 = Session::new(Arc::clone(&graph1), cfg);
    let full = sim1.run_with(&stimuli, duration, &spill_opts()).unwrap();

    let mut sink = Collect::default();
    let inc = sim1
        .run_incremental_streaming(&r0, &changed, &stimuli, duration, &spill_opts(), &mut sink)
        .unwrap();
    assert_bit_identical(&graph1, &full, &inc, "streaming");

    // Streamed deliveries are exactly the recomputed cone outputs: every
    // in-cone driven signal for every window, nothing else — and each
    // delivery's live words match the full run's stored window verbatim.
    let cone = transitive_fanout(&graph1, &changed);
    let in_cone: Vec<usize> = (0..graph1.n_signals())
        .filter(|&s| graph1.driver(SignalId(s as u32)).is_some_and(|g| cone[g]))
        .collect();
    assert!(!in_cone.is_empty(), "resize set must drive a cone");
    let n_windows = sink.got.iter().map(|d| d.1).max().unwrap() + 1;
    assert_eq!(
        sink.got.len(),
        in_cone.len() * n_windows,
        "one delivery per (in-cone signal, window)"
    );
    let mut seen: Vec<(usize, usize)> = sink.got.iter().map(|d| (d.0, d.1)).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), sink.got.len(), "no duplicate deliveries");
    for (s, w, raw) in &sink.got {
        assert!(
            in_cone.contains(s),
            "signal {s} streamed but is outside the cone"
        );
        let reference = full.raw_window(*s, *w).unwrap();
        let live = raw
            .iter()
            .position(|&x| x == EOW)
            .map_or(&raw[..], |e| &raw[..=e]);
        assert_eq!(live, &reference[..], "window {w} of signal {s}");
    }
}

#[test]
fn incremental_preconditions_are_enforced() {
    let d = design(3, 60);
    let graph = graph_of(&d, &d.sdf);
    let cycle = 60;
    let duration = cycle * 8;
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(8, cycle, 0.5, 1),
    );
    let sim = Session::new(
        Arc::clone(&graph),
        SimConfig::small().with_window_align(cycle),
    );

    // No spill on the baseline → refused.
    let no_spill = sim.run(&stimuli, duration).unwrap();
    assert!(matches!(
        sim.run_incremental(&no_spill, &[0], &stimuli, duration, &spill_opts()),
        Err(CoreError::BadIncremental { .. })
    ));

    let r0 = sim.run_with(&stimuli, duration, &spill_opts()).unwrap();
    // Changed gate out of range → refused.
    assert!(matches!(
        sim.run_incremental(&r0, &[graph.n_gates()], &stimuli, duration, &spill_opts()),
        Err(CoreError::BadIncremental { .. })
    ));
    // Duration mismatch → refused.
    assert!(matches!(
        sim.run_incremental(&r0, &[0], &stimuli, duration / 2, &spill_opts()),
        Err(CoreError::BadIncremental { .. })
    ));
    // Wrong stimulus count → the usual mismatch error.
    assert!(matches!(
        sim.run_incremental(&r0, &[0], &stimuli[1..], duration, &spill_opts()),
        Err(CoreError::StimulusMismatch { .. })
    ));
    // An empty change set degenerates to "reuse everything" and still
    // reports a well-formed result.
    let noop = sim
        .run_incremental(&r0, &[], &stimuli, duration, &spill_opts())
        .unwrap();
    for s in 0..graph.n_signals() {
        assert_eq!(noop.waveform(s).unwrap(), r0.waveform(s).unwrap());
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest::proptest! {
        #![proptest_config(ProptestConfig {
            cases: 10,
            .. ProptestConfig::default()
        })]

        /// Randomized resize sets: any subset of gates, scaled by a random
        /// factor, simulated with 1 or 4 concurrent windows — incremental
        /// equals full, bit for bit.
        #[test]
        fn randomized_resize_sets_stay_bit_identical(
            seed in 0u64..1 << 32,
            n_changed in 1usize..6,
            factor_tenths in 12u32..40,
            parallel in proptest::any::<bool>(),
        ) {
            let d = design(seed | 1, 140);
            let graph0 = graph_of(&d, &d.sdf);
            let n_gates = graph0.n_gates();
            let changed: Vec<usize> = (0..n_changed)
                .map(|k| ((seed >> (k * 7)) as usize).wrapping_mul(31 + k) % n_gates)
                .collect();
            let sdf1 = resize_gates(&d, &changed, f64::from(factor_tenths) / 10.0);
            let graph1 = graph_of(&d, &sdf1);
            let cycle = 70;
            let cycles = 12usize;
            let duration = cycle * cycles as i32;
            let stimuli = generate(
                graph0.primary_inputs().len(),
                &StimulusConfig::random(cycles, cycle, 0.6, seed ^ 0xAB),
            );
            let cfg = SimConfig::small()
                .with_cycle_parallelism(if parallel { 4 } else { 1 })
                .with_window_align(cycle);

            let sim0 = Session::new(Arc::clone(&graph0), cfg.clone());
            let r0 = sim0.run_with(&stimuli, duration, &spill_opts()).unwrap();
            let sim1 = Session::new(Arc::clone(&graph1), cfg);
            let full = sim1.run_with(&stimuli, duration, &spill_opts()).unwrap();
            let inc = sim1
                .run_incremental(&r0, &changed, &stimuli, duration, &spill_opts())
                .unwrap();

            let diffs = inc.saif.diff(&full.saif);
            prop_assert!(diffs.is_empty(), "SAIF diffs: {:?}", diffs.first());
            for s in 0..graph1.n_signals() {
                prop_assert_eq!(inc.toggle_count(s), full.toggle_count(s));
                prop_assert_eq!(
                    inc.waveform(s).unwrap(),
                    full.waveform(s).unwrap(),
                    "waveform of signal {}", s
                );
            }
            let _ = Waveform::constant(false); // keep the import exercised
        }
    }
}
