//! Cross-engine equivalence: the paper's central accuracy claim is that
//! GATSPI re-simulation matches the commercial (event-driven) simulator
//! with no loss. These tests assert bit-exact SAIF plus waveform
//! spot-checks across the benchmark suite, and that every GATSPI execution
//! configuration (windowing, segmentation, CPU backend, multi-GPU) agrees
//! with itself.

use std::sync::Arc;

use gatspi_core::verify::spot_check_waveforms;
use gatspi_core::{Session, SimConfig};
use gatspi_gpu::{DeviceSpec, MultiGpu};
use gatspi_refsim::{EventSimulator, RefConfig};
use gatspi_workloads::suite::{table2_suite, BuiltBenchmark};

fn gatspi(b: &BuiltBenchmark, parallelism: usize) -> gatspi_core::SimResult {
    let cfg = SimConfig::small()
        .with_cycle_parallelism(parallelism)
        .with_window_align(b.cycle_time);
    Session::new(Arc::clone(&b.graph), cfg)
        .run(&b.stimuli, b.duration)
        .expect("gatspi run")
}

fn reference(b: &BuiltBenchmark) -> gatspi_refsim::RefResult {
    EventSimulator::new(&b.graph, RefConfig::default())
        .run(&b.stimuli, b.duration)
        .expect("reference run")
}

/// Every suite row, windowed GATSPI vs event-driven reference: SAIF must be
/// identical (TC and T0/T1, every net).
#[test]
fn saif_bit_exact_across_suite() {
    for def in table2_suite() {
        let b = def.build_at_scale(0.12);
        let g = gatspi(&b, 8);
        let r = reference(&b);
        let diffs = g.saif.diff(&r.saif);
        assert!(
            diffs.is_empty(),
            "{}: {} SAIF diffs, first: {:?}",
            b.label(),
            diffs.len(),
            diffs.first()
        );
    }
}

/// Waveform spot-checks (the paper's second verification method): full
/// waveforms of pseudo-random signals compared edge for edge.
#[test]
fn waveform_spot_checks() {
    for def in table2_suite().into_iter().step_by(3) {
        let b = def.build_at_scale(0.12);
        let g = gatspi(&b, 4);
        let r = reference(&b);
        let ref_waves = r.waveforms.as_ref().expect("recorded");
        let n = b.graph.n_signals();
        let picks: Vec<usize> = (0..12).map(|k| (k * 977 + 13) % n).collect();
        let mut ours = Vec::new();
        for &s in &picks {
            ours.push((s, g.waveform(s).expect("extraction")));
        }
        let names: Vec<String> = picks
            .iter()
            .map(|&s| {
                b.graph
                    .signal_name(gatspi_graph::SignalId(s as u32))
                    .to_string()
            })
            .collect();
        let report = spot_check_waveforms(
            ours.iter()
                .zip(&names)
                .map(|((s, w), name)| (name.as_str(), w, &ref_waves[*s])),
        );
        assert!(
            report.passed(),
            "{}: {:?}",
            b.label(),
            report.mismatches.first()
        );
    }
}

/// Different cycle-parallelism settings must not change results.
#[test]
fn window_count_invariance() {
    let b = table2_suite()[7].build_at_scale(0.1);
    let base = gatspi(&b, 1);
    for p in [2usize, 8, 32] {
        let windowed = gatspi(&b, p);
        assert!(base.saif.diff(&windowed.saif).is_empty(), "P={p} diverged");
    }
}

/// The OpenMP-equivalent CPU backend computes the same result.
#[test]
fn cpu_backend_matches() {
    let b = table2_suite()[6].build_at_scale(0.15);
    let g = gatspi(&b, 8);
    let cfg = SimConfig::small()
        .with_cycle_parallelism(8)
        .with_window_align(b.cycle_time);
    let cpu = Session::new(Arc::clone(&b.graph), cfg)
        .run_cpu(&b.stimuli, b.duration, 3)
        .expect("cpu run");
    assert!(g.saif.diff(&cpu.saif).is_empty());
}

/// Multi-GPU distribution is result-invariant.
#[test]
fn multi_gpu_matches() {
    let b = table2_suite()[0].build_at_scale(0.3);
    let g = gatspi(&b, 8);
    let cfg = SimConfig::small()
        .with_cycle_parallelism(8)
        .with_window_align(b.cycle_time);
    let sim = Session::new(Arc::clone(&b.graph), cfg);
    for n in [2usize, 3] {
        let gpus = MultiGpu::new(DeviceSpec::v100(), n, 1 << 20);
        let multi = sim
            .run_multi_gpu(&gpus, &b.stimuli, b.duration)
            .expect("multi run");
        assert!(g.saif.diff(&multi.saif).is_empty(), "{n} GPUs diverged");
    }
}

/// Memory segmentation (the paper's "compile the testbench into shorter
/// segments" fallback) is result-invariant too.
#[test]
fn segmented_run_matches() {
    let b = table2_suite()[0].build_at_scale(0.2);
    let roomy = gatspi(&b, 16);
    let tight_cfg = SimConfig {
        memory_words: 40_000,
        ..SimConfig::small()
    }
    .with_cycle_parallelism(16)
    .with_window_align(b.cycle_time);
    let tight = Session::new(Arc::clone(&b.graph), tight_cfg)
        .run(&b.stimuli, b.duration)
        .expect("segmented run");
    assert!(tight.segments() > 1, "expected segmentation");
    assert!(roomy.saif.diff(&tight.saif).is_empty());
}

/// Launch fusion must be purely a scheduling optimization: a fused
/// schedule produces bit-identical SAIF and waveforms to the paper's
/// original two-launches-per-level schedule, with strictly fewer launches.
#[test]
fn fused_schedule_bit_matches_unfused() {
    for def in table2_suite().into_iter().step_by(2) {
        let b = def.build_at_scale(0.1);
        let run = |fuse_threshold: usize| {
            Session::new(
                Arc::clone(&b.graph),
                SimConfig::small()
                    .with_cycle_parallelism(6)
                    .with_window_align(b.cycle_time)
                    .with_fuse_threshold(fuse_threshold),
            )
            .run(&b.stimuli, b.duration)
            .expect("run")
        };
        let unfused = run(0);
        let fused = run(1 << 20);
        assert!(
            fused.app_profile.fused_launches > 0,
            "{}: nothing fused",
            b.label()
        );
        assert!(
            fused.app_profile.launches < unfused.app_profile.launches,
            "{}: fusion did not reduce launches",
            b.label()
        );
        let diffs = fused.saif.diff(&unfused.saif);
        assert!(
            diffs.is_empty(),
            "{}: fused diverged, first: {:?}",
            b.label(),
            diffs.first()
        );
        let n = b.graph.n_signals();
        for k in 0..8 {
            let s = (k * 977 + 13) % n;
            assert_eq!(
                fused.waveform(s).expect("fused extraction"),
                unfused.waveform(s).expect("unfused extraction"),
                "{}: waveform {s} differs",
                b.label()
            );
        }
    }
}

/// The parallel (multi-threaded commercial stand-in) baseline agrees with
/// the serial baseline and therefore with GATSPI.
#[test]
fn parallel_baseline_matches() {
    let b = table2_suite()[6].build_at_scale(0.15);
    let serial = reference(&b);
    let par = gatspi_refsim::run_parallel(
        &b.graph,
        RefConfig::default(),
        &b.stimuli,
        b.duration,
        4,
        b.cycle_time,
    )
    .expect("parallel baseline");
    assert!(serial.saif.diff(&par.saif).is_empty());
}
