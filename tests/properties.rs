//! Property-based tests: random circuits, random SDF annotations and random
//! stimuli must always keep the GATSPI engine and the event-driven
//! reference in exact agreement, and core data-structure invariants must
//! hold for arbitrary inputs.

use std::sync::Arc;

use gatspi_core::{Session, SimConfig};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_refsim::{EventSimulator, RefConfig};
use gatspi_wave::{Waveform, WaveformBuilder, EOW};
use gatspi_workloads::circuits::{random_logic, RandomLogicConfig};
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Random design + random delays + random stimulus: SAIF must match
    /// between the data-parallel engine and the event-driven reference.
    #[test]
    fn engines_agree_on_random_designs(
        seed in 0u64..5000,
        gates in 30usize..220,
        depth in 3usize..10,
        toggle_prob in 0.05f64..0.95,
        parallelism in 1usize..6,
    ) {
        let netlist = random_logic(&RandomLogicConfig {
            gates,
            inputs: 12,
            depth,
            output_fraction: 0.1,
            seed,
        });
        let sdf = attach_sdf(&netlist, &SdfGenConfig {
            seed: seed ^ 0xABCD,
            ..SdfGenConfig::default()
        });
        let graph = Arc::new(
            CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap(),
        );
        // Cycle long enough for the deepest path (depth*12 + wires).
        let cycle = 400;
        let cycles = 24usize;
        let stimuli = generate(
            graph.primary_inputs().len(),
            &StimulusConfig::random(cycles, cycle, toggle_prob, seed ^ 0x55),
        );
        let duration = cycle * cycles as i32;
        let cfg = SimConfig::small()
            .with_cycle_parallelism(parallelism)
            .with_window_align(cycle);
        let g = Session::new(Arc::clone(&graph), cfg).run(&stimuli, duration).unwrap();
        let r = EventSimulator::new(&graph, RefConfig { record_waveforms: false, ..RefConfig::default() })
            .run(&stimuli, duration)
            .unwrap();
        let diffs = g.saif.diff(&r.saif);
        prop_assert!(diffs.is_empty(), "first diff: {:?}", diffs.first());
    }

    /// Waveform windowing then stitching reproduces pointwise values.
    #[test]
    fn window_preserves_values(
        initial in any::<bool>(),
        gaps in prop::collection::vec(1i32..50, 0..40),
        win in 5i32..60,
    ) {
        let mut b = WaveformBuilder::new(initial);
        let mut t = 0;
        for g in &gaps {
            t += g;
            b.toggle(t).unwrap();
        }
        let w = b.finish();
        let end = t + 10;
        let mut start = 0;
        while start < end {
            let stop = (start + win).min(end);
            let seg = w.window(start, stop);
            for q in (start..stop).step_by(3) {
                prop_assert_eq!(seg.value_at(q - start), w.value_at(q));
            }
            start = stop;
        }
    }

    /// Raw-array round-trip: any waveform built from toggles re-validates.
    #[test]
    fn waveform_raw_roundtrip(
        initial in any::<bool>(),
        gaps in prop::collection::vec(1i32..1000, 0..64),
    ) {
        let mut b = WaveformBuilder::new(initial);
        let mut t = 0;
        for g in &gaps {
            t += g;
            b.toggle(t).unwrap();
        }
        let w = b.finish();
        let back = Waveform::from_raw(w.raw().to_vec()).unwrap();
        prop_assert_eq!(&back, &w);
        prop_assert_eq!(back.toggle_count(), gaps.len());
        prop_assert_eq!(*w.raw().last().unwrap(), EOW);
    }

    /// SAIF T0+T1 always equals the requested duration for gate outputs.
    #[test]
    fn saif_durations_partition_time(
        seed in 0u64..1000,
        toggle_prob in 0.1f64..0.9,
    ) {
        let netlist = random_logic(&RandomLogicConfig {
            gates: 60,
            inputs: 8,
            depth: 4,
            output_fraction: 0.2,
            seed,
        });
        let sdf = attach_sdf(&netlist, &SdfGenConfig::default());
        let graph = Arc::new(
            CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap(),
        );
        let cycle = 300;
        let cycles = 10usize;
        let stimuli = generate(
            graph.primary_inputs().len(),
            &StimulusConfig::random(cycles, cycle, toggle_prob, seed),
        );
        let duration = cycle * cycles as i32;
        let g = Session::new(
            Arc::clone(&graph),
            SimConfig::small().with_cycle_parallelism(4).with_window_align(cycle),
        )
        .run(&stimuli, duration)
        .unwrap();
        for (name, rec) in &g.saif.nets {
            prop_assert_eq!(rec.t0 + rec.t1, i64::from(duration), "net {}", name);
        }
    }
}
