//! Session-API acceptance tests: cached plans across segments and
//! multi-GPU shards, host-spilled waveforms for segmented runs, streaming
//! sinks, and bit-identical parity between the deprecated `Gatspi` shims
//! and the session they delegate to.

use std::sync::Arc;

use gatspi_core::{RunOptions, Session, SimConfig, WaveformSink, WindowInfo};
use gatspi_gpu::{DeviceSpec, MultiGpu};
use gatspi_workloads::suite::{table2_suite, BuiltBenchmark};

fn bench(scale: f64) -> BuiltBenchmark {
    table2_suite()[0].build_at_scale(scale)
}

fn session(b: &BuiltBenchmark, parallelism: usize) -> Session {
    let cfg = SimConfig::small()
        .with_cycle_parallelism(parallelism)
        .with_window_align(b.cycle_time);
    Session::new(Arc::clone(&b.graph), cfg)
}

/// Equal-window-count segments share one `LevelSchedule` build: forcing a
/// run into equal segments must report exactly one plan miss, and the
/// split run must match the unsegmented one bit-exactly.
#[test]
fn equal_nw_segments_build_schedule_once() {
    let b = bench(0.15);
    let sim = session(&b, 8);
    let whole = sim.run(&b.stimuli, b.duration).expect("whole run");

    let split_sim = session(&b, 8);
    let r = split_sim
        .run_with(
            &b.stimuli,
            b.duration,
            &RunOptions::default().with_segment_windows(4),
        )
        .expect("split run");
    assert_eq!(r.segments(), 2, "8 windows capped at 4 → two segments");
    let stats = split_sim.plan_cache_stats();
    assert_eq!(
        stats.misses, 1,
        "two equal-nw segments must build the LevelSchedule exactly once"
    );
    assert_eq!(stats.hits, 1);
    assert!(whole.saif.diff(&r.saif).is_empty());
}

/// Multi-GPU sharding builds one schedule for the whole run (even shards)
/// and matches the single-device result bit-exactly.
#[test]
fn multi_gpu_shares_one_schedule_and_matches() {
    let b = bench(0.2);
    let single = session(&b, 8)
        .run(&b.stimuli, b.duration)
        .expect("single run");

    let sim = session(&b, 4);
    let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 20);
    let multi = sim
        .run_multi_gpu(&gpus, &b.stimuli, b.duration)
        .expect("multi run");
    let stats = sim.plan_cache_stats();
    assert_eq!(
        stats.misses, 1,
        "even shards: one LevelSchedule build per multi-GPU run"
    );
    // The failover-aware fan-out pre-warms every shard's plan before the
    // shard threads start (gpus.len() lookups, one miss), then each shard
    // re-resolves its warm plan at execution time: 2·gpus.len() − 1 hits.
    assert_eq!(stats.hits as usize, 2 * gpus.len() - 1);
    assert!(single.saif.diff(&multi.saif).is_empty());
    assert_eq!(single.total_toggles(), multi.total_toggles());
}

/// Host waveform spill: a segmented run returns the same full-duration
/// waveform for *every* signal as the unsegmented reference run.
#[test]
fn segmented_waveforms_correct_after_host_spill() {
    let b = bench(0.2);
    let roomy = session(&b, 16).run(&b.stimuli, b.duration).expect("roomy");
    assert_eq!(roomy.segments(), 1);

    let tight_cfg = SimConfig {
        memory_words: 40_000,
        ..SimConfig::small()
    }
    .with_cycle_parallelism(16)
    .with_window_align(b.cycle_time);
    let tight = Session::new(Arc::clone(&b.graph), tight_cfg)
        .run_with(
            &b.stimuli,
            b.duration,
            &RunOptions::default().with_waveform_spill(),
        )
        .expect("segmented run");
    assert!(tight.segments() > 1, "expected segmentation");
    assert!(roomy.saif.diff(&tight.saif).is_empty());
    for s in 0..b.graph.n_signals() {
        assert_eq!(
            roomy.waveform(s).expect("device extraction"),
            tight.waveform(s).expect("host spill"),
            "signal {s} diverged after host spill"
        );
    }
}

/// A streaming sink observes every window exactly once, in run order, and
/// raw windows agree with `SimResult::raw_window` on the spilled result.
#[test]
fn streaming_sink_observes_run_in_order() {
    #[derive(Default)]
    struct Collect {
        seen: Vec<(usize, usize)>, // (window, segment)
        raws: Vec<(usize, usize, Vec<i32>)>,
    }
    impl WaveformSink for Collect {
        fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
            if self.seen.last().map(|&(w, _)| w) != Some(info.window) {
                self.seen.push((info.window, info.segment));
            }
            self.raws.push((signal, info.window, raw.to_vec()));
        }
    }

    let b = bench(0.15);
    let sim = session(&b, 4);
    let mut sink = Collect::default();
    let r = sim
        .run_streaming(
            &b.stimuli,
            b.duration,
            &RunOptions::default()
                .with_waveform_spill()
                .with_segment_windows(2),
            &mut sink,
        )
        .expect("streaming run");
    assert_eq!(r.segments(), 2);
    // Windows arrive strictly in order, with monotone segment indices.
    let windows: Vec<usize> = sink.seen.iter().map(|&(w, _)| w).collect();
    assert_eq!(windows, (0..windows.len()).collect::<Vec<_>>());
    assert!(sink.seen.windows(2).all(|p| p[0].1 <= p[1].1));
    // The user sink and the built-in spill saw the same raw words.
    for (signal, window, raw) in sink.raws.iter().take(64) {
        let from_result = r.raw_window(*signal, *window).expect("raw window");
        assert!(
            raw.starts_with(&from_result),
            "sink raw must begin with the stored waveform up to EOW"
        );
    }
}

/// The deprecated one-shot shims delegate to the session and produce
/// bit-identical results.
#[test]
#[allow(deprecated)]
fn deprecated_shims_bit_match_session() {
    use gatspi_core::{run_multi_gpu, Gatspi};

    let b = bench(0.15);
    let cfg = SimConfig::small()
        .with_cycle_parallelism(4)
        .with_window_align(b.cycle_time);

    let session = Session::new(Arc::clone(&b.graph), cfg.clone());
    let via_session = session.run(&b.stimuli, b.duration).expect("session run");

    let shim = Gatspi::new(Arc::clone(&b.graph), cfg);
    let via_shim = shim.run(&b.stimuli, b.duration).expect("shim run");

    assert!(via_session.saif.diff(&via_shim.saif).is_empty());
    assert_eq!(via_session.total_toggles(), via_shim.total_toggles());
    assert_eq!(via_session.segments(), via_shim.segments());
    assert_eq!(
        via_session.app_profile.launches,
        via_shim.app_profile.launches
    );
    for s in (0..b.graph.n_signals()).step_by(7) {
        assert_eq!(
            via_session.waveform(s).expect("session waveform"),
            via_shim.waveform(s).expect("shim waveform"),
            "signal {s}"
        );
    }

    // Multi-GPU shim parity.
    let gpus = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 20);
    let m_session = session
        .run_multi_gpu(&gpus, &b.stimuli, b.duration)
        .expect("session multi");
    let gpus2 = MultiGpu::new(DeviceSpec::v100(), 2, 1 << 20);
    let m_shim = run_multi_gpu(&shim, &gpus2, &b.stimuli, b.duration).expect("shim multi");
    assert!(m_session.saif.diff(&m_shim.saif).is_empty());
    assert_eq!(m_session.total_toggles(), m_shim.total_toggles());
}

/// Repeated stimuli against one session (the paper's re-simulation loop)
/// never rebuild the plan, and results are reproducible.
#[test]
fn repeated_runs_reuse_plans() {
    let b = bench(0.15);
    let sim = session(&b, 8);
    let first = sim.run(&b.stimuli, b.duration).expect("run 1");
    for _ in 0..3 {
        let again = sim.run(&b.stimuli, b.duration).expect("run n");
        assert!(first.saif.diff(&again.saif).is_empty());
    }
    let stats = sim.plan_cache_stats();
    assert_eq!(stats.misses, 1, "one build across four runs");
    assert_eq!(stats.hits, 3);
}
