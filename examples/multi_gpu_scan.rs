//! Multi-GPU scaling on a high-activity scan workload (the Fig. 6
//! experiment shape): cycle parallelism is distributed across 1, 2 and 4
//! simulated devices and the kernel times follow `t = t1/n + ovr`.
//!
//! ```sh
//! cargo run --release --example multi_gpu_scan
//! ```

use std::sync::Arc;

use gatspi_core::{Session, SimConfig};
use gatspi_gpu::{DeviceSpec, MultiGpu};
use gatspi_workloads::suite::table2_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // NVDLA_m(large) scan: high activity, long enough to amortize launches.
    let bench = table2_suite()[3].build();
    println!(
        "workload: {} — {} gates, {} cycles",
        bench.label(),
        bench.graph.n_gates(),
        bench.cycles
    );

    let cfg = SimConfig::default().with_window_align(bench.cycle_time);
    // One compiled session serves every device count; the launch plan is
    // built once per distinct shard window count and shared across shards.
    let sim = Session::new(Arc::clone(&bench.graph), cfg.clone());
    let single = sim.run(&bench.stimuli, bench.duration)?;
    let t1 = single.kernel_profile.modeled_seconds;
    println!("1 GPU : kernel {:.3} ms (modeled V100)", t1 * 1e3);

    for n in [2usize, 4] {
        let gpus = MultiGpu::new(DeviceSpec::v100(), n, 8 << 20);
        let multi = sim.run_multi_gpu(&gpus, &bench.stimuli, bench.duration)?;
        let tn = multi.kernel_profile.modeled_seconds;
        println!(
            "{n} GPUs: kernel {:.3} ms (modeled), scaling {:.2}x, predicted t1/n+ovr = {:.3} ms",
            tn * 1e3,
            t1 / tn,
            gpus.predicted_scaling(t1, multi.app_profile.launches) * 1e3
        );
        // Results stay exact regardless of distribution.
        assert!(single.saif.diff(&multi.saif).is_empty());
    }
    let stats = sim.plan_cache_stats();
    println!(
        "SAIF identical across all distributions ({} plan build(s), {} cache hit(s))",
        stats.misses, stats.hits
    );
    Ok(())
}
