//! The paper's §4 glitch-optimization flow, end to end: re-simulate a
//! multiplier datapath, locate the worst glitch sources, apply
//! designer-style fixes, re-simulate, and report the power saving plus the
//! turnaround speedup over the event-driven baseline.
//!
//! ```sh
//! cargo run --release --example glitch_optimization
//! ```

use gatspi_core::SimConfig;
use gatspi_power::flow::{run_glitch_flow, FlowConfig};
use gatspi_workloads::circuits::mac_datapath;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = mac_datapath(8, 8);
    let sdf = attach_sdf(&netlist, &SdfGenConfig::default());
    let cycle = 1200;
    let cycles = 120;
    let stimuli = generate(
        netlist.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.35, 7),
    );

    let cfg = FlowConfig {
        fixes: 24,
        sim: SimConfig::default().with_window_align(cycle),
        compare_baseline: true,
        ..FlowConfig::default()
    };
    let report = run_glitch_flow(&netlist, &sdf, &stimuli, cycle * cycles as i32, cycle, &cfg)?;

    println!(
        "glitch-optimization flow on {} gates:",
        netlist.gate_count()
    );
    println!("  fixed gates:        {}", report.fixed_gates.len());
    println!(
        "  glitch toggles:     {} -> {}",
        report.glitch_before.1, report.glitch_after.1
    );
    println!(
        "  power:              {:.4} uW -> {:.4} uW ({:.2}% saving)",
        report.power_before.total_w() * 1e6,
        report.power_after.total_w() * 1e6,
        report.saving_pct
    );
    println!(
        "  GATSPI turnaround:  {:.2} s for both re-simulations",
        report.gatspi_seconds
    );
    if let (Some(b), Some(s)) = (report.baseline_seconds, report.turnaround_speedup()) {
        println!("  baseline turnaround: {b:.2} s  (GATSPI is {s:.1}X faster)");
    }
    Ok(())
}
