//! ECO-loop incremental re-simulation: run a design once with waveform
//! spill, "resize" ~2% of its gates (scale their SDF delays, the classic
//! engineering-change-order edit), then re-simulate **only the changed
//! gates' fan-out cones** with [`Session::run_incremental`] — and verify
//! the delta run is bit-identical to a full re-simulation of the patched
//! design, at a fraction of the wall time.
//!
//! ```sh
//! cargo run --release --example eco_flow
//! ```

use std::sync::Arc;
use std::time::Instant;

use gatspi_core::{RunOptions, Session, SimConfig};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::GateId;
use gatspi_workloads::circuits::mac_datapath;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = mac_datapath(8, 8);
    let sdf = attach_sdf(&netlist, &SdfGenConfig::default());
    let cycle = 1200;
    let cycles = 96usize;
    let duration = cycle * cycles as i32;
    let stimuli = generate(
        netlist.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.35, 7),
    );
    let opts = GraphOptions::default();
    let graph0 = Arc::new(CircuitGraph::build(&netlist, Some(&sdf), &opts)?);

    // --- Baseline: one full re-simulation with waveform spill (the spill
    // is what later delta runs read their boundary stimulus from).
    let run_opts = RunOptions::default().with_waveform_spill();
    let sim_cfg = SimConfig::default().with_window_align(cycle);
    let sim0 = Session::new(Arc::clone(&graph0), sim_cfg.clone());
    let t = Instant::now();
    let r0 = sim0.run_with(&stimuli, duration, &run_opts)?;
    let full_first = t.elapsed().as_secs_f64();

    // --- The ECO: resize the latest-level 2% of gates (an optimizer's
    // typical endpoint fixes) by scaling their IOPATH delays 1.8x.
    let n_changed = (graph0.n_gates() / 50).max(1);
    let mut by_level: Vec<usize> = (0..graph0.n_gates()).collect();
    by_level.sort_unstable_by_key(|&g| std::cmp::Reverse(graph0.gate_level(g)));
    let changed: Vec<usize> = by_level[..n_changed].to_vec();
    let mut sdf_eco = sdf.clone();
    for &g in &changed {
        let name = netlist.gate(GateId::from_index(g)).name();
        for cell in &mut sdf_eco.cells {
            if cell.instance.as_deref() == Some(name) {
                for p in &mut cell.iopaths {
                    for t in [&mut p.rise, &mut p.fall] {
                        let scale = |v: Option<f64>| v.map(|x| (x * 1.8).round());
                        t.min = scale(t.min);
                        t.typ = scale(t.typ);
                        t.max = scale(t.max);
                    }
                }
            }
        }
    }
    let graph1 = Arc::new(CircuitGraph::build(&netlist, Some(&sdf_eco), &opts)?);

    // --- Delta run: only the changed gates' cones re-execute; everything
    // else is reused from the baseline spill.
    let sim1 = Session::new(Arc::clone(&graph1), sim_cfg);
    let t = Instant::now();
    let inc = sim1.run_incremental(&r0, &changed, &stimuli, duration, &run_opts)?;
    let incremental = t.elapsed().as_secs_f64();

    // --- Proof: a full re-simulation of the patched design is
    // bit-identical (same session, so the wall times compare fairly).
    let t = Instant::now();
    let full = sim1.run_with(&stimuli, duration, &run_opts)?;
    let full_second = t.elapsed().as_secs_f64();
    let diffs = inc.saif.diff(&full.saif);
    assert!(diffs.is_empty(), "SAIF mismatch: {:?}", diffs.first());
    for s in 0..graph1.n_signals() {
        assert_eq!(
            inc.waveform(s)?,
            full.waveform(s)?,
            "waveform mismatch on signal {s}"
        );
    }

    println!("ECO flow on {} gates:", netlist.gate_count());
    println!(
        "  resized gates:        {n_changed} ({:.1}% of design)",
        100.0 * n_changed as f64 / graph0.n_gates() as f64
    );
    println!("  full re-sim (cold):   {:.1} ms", full_first * 1e3);
    println!("  full re-sim (warm):   {:.1} ms", full_second * 1e3);
    println!(
        "  incremental re-sim:   {:.1} ms  ({:.1}X faster than warm full)",
        incremental * 1e3,
        full_second / incremental
    );
    println!("  bit-identical:        yes (SAIF + every waveform verified)");
    Ok(())
}
