//! File-based tool flow (the paper's Fig. 2): read `Netlist.gv`,
//! `Netlist.sdf` and a VCD testbench from disk, re-simulate, and write the
//! `Netlist+Testbench.SAIF` plus an output VCD — both *streamed during
//! the run* through [`SaifSink`]/[`VcdSink`], so memory stays bounded per
//! stimulus window no matter how long the testbench is.
//!
//! ```sh
//! cargo run --release --example file_based_flow
//! ```

use std::fs;
use std::io::BufWriter;
use std::sync::Arc;

use gatspi_core::{RunOptions, SaifSink, Session, SimConfig, VcdSink, WaveformSink, WindowInfo};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{verilog, CellLibrary};
use gatspi_sdf::SdfFile;
use gatspi_wave::{vcd, Waveform};
use gatspi_workloads::circuits::int_adder_array;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

/// Feeds one streaming run into two sinks at once (`WaveformSink` is
/// object-safe, so fan-out composes without engine support).
struct Tee<'a>(&'a mut dyn WaveformSink, &'a mut dyn WaveformSink);

impl WaveformSink for Tee<'_> {
    fn waveform(&mut self, signal: usize, info: &WindowInfo, raw: &[i32]) {
        self.0.waveform(signal, info, raw);
        self.1.waveform(signal, info, raw);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("gatspi_flow_demo");
    fs::create_dir_all(&dir)?;

    // --- Produce the three input files (normally these come from synthesis
    // and RTL simulation).
    let design = int_adder_array(8, 2);
    let sdf = attach_sdf(&design, &SdfGenConfig::default());
    let cycle = 400;
    let stimuli = generate(
        design.primary_inputs().len(),
        &StimulusConfig::random(200, cycle, 0.6, 5),
    );
    let names: Vec<String> = design
        .primary_inputs()
        .iter()
        .map(|&n| design.net(n).name().to_string())
        .collect();
    let gv_path = dir.join("netlist.gv");
    let sdf_path = dir.join("netlist.sdf");
    let vcd_path = dir.join("testbench.vcd");
    fs::write(&gv_path, verilog::write(&design))?;
    fs::write(&sdf_path, sdf.write())?;
    fs::write(
        &vcd_path,
        vcd::write(
            design.name(),
            names.iter().map(String::as_str).zip(stimuli.iter()),
        ),
    )?;
    println!("wrote inputs to {}", dir.display());

    // --- The GATSPI flow proper: files in, SAIF out.
    let netlist = verilog::parse(&fs::read_to_string(&gv_path)?, CellLibrary::industry_mini())?;
    let sdf = SdfFile::parse(&fs::read_to_string(&sdf_path)?)?;
    let graph = Arc::new(CircuitGraph::build(
        &netlist,
        Some(&sdf),
        &GraphOptions::default(),
    )?);
    let tb = vcd::parse(&fs::read_to_string(&vcd_path)?)?;
    let stimuli: Vec<Waveform> = graph
        .primary_inputs()
        .iter()
        .map(|&s| tb.signals[graph.signal_name(s)].clone())
        .collect();
    let duration = cycle * 200;

    let sim = Session::new(
        Arc::clone(&graph),
        SimConfig::default().with_window_align(cycle),
    );

    // Stream both deliverables during the run — no waveform spill, no
    // post-hoc stitching: the VCD sink writes the primary outputs window
    // by window straight to disk, and the SAIF sink folds per-window
    // activity deltas. Memory stays O(one window) + O(nets).
    let out_vcd = dir.join("outputs.vcd");
    let po: Vec<(usize, &str)> = graph
        .primary_outputs()
        .iter()
        .map(|&s| (s.index(), graph.signal_name(s)))
        .collect();
    let mut vcd_sink = VcdSink::filtered(
        BufWriter::new(fs::File::create(&out_vcd)?),
        graph.name(),
        graph.n_signals(),
        &po,
        "1ps",
    )?;
    let all_names: Vec<String> = (0..graph.n_signals())
        .map(|s| {
            graph
                .signal_name(gatspi_graph::SignalId(s as u32))
                .to_string()
        })
        .collect();
    let mut saif_sink = SaifSink::new(graph.name(), all_names);
    let result = sim.run_streaming(
        &stimuli,
        duration,
        &RunOptions::default(),
        &mut Tee(&mut vcd_sink, &mut saif_sink),
    )?;
    vcd_sink.finish()?;
    println!("output waveforms -> {}", out_vcd.display());

    let saif = saif_sink.finish(duration);
    assert!(
        saif.diff(&result.saif).is_empty(),
        "streamed SAIF must equal the engine's kernel-side SAIF"
    );
    let saif_path = dir.join("netlist_testbench.saif");
    fs::write(&saif_path, saif.write())?;
    println!(
        "simulated {} gates, {} total toggles -> {}",
        graph.n_gates(),
        result.total_toggles(),
        saif_path.display()
    );
    Ok(())
}
