//! File-based tool flow (the paper's Fig. 2): read `Netlist.gv`,
//! `Netlist.sdf` and a VCD testbench from disk, re-simulate, and write the
//! `Netlist+Testbench.SAIF` plus an output VCD.
//!
//! ```sh
//! cargo run --release --example file_based_flow
//! ```

use std::fs;
use std::sync::Arc;

use gatspi_core::{RunOptions, Session, SimConfig};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{verilog, CellLibrary};
use gatspi_sdf::SdfFile;
use gatspi_wave::{vcd, Waveform};
use gatspi_workloads::circuits::int_adder_array;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("gatspi_flow_demo");
    fs::create_dir_all(&dir)?;

    // --- Produce the three input files (normally these come from synthesis
    // and RTL simulation).
    let design = int_adder_array(8, 2);
    let sdf = attach_sdf(&design, &SdfGenConfig::default());
    let cycle = 400;
    let stimuli = generate(
        design.primary_inputs().len(),
        &StimulusConfig::random(200, cycle, 0.6, 5),
    );
    let names: Vec<String> = design
        .primary_inputs()
        .iter()
        .map(|&n| design.net(n).name().to_string())
        .collect();
    let gv_path = dir.join("netlist.gv");
    let sdf_path = dir.join("netlist.sdf");
    let vcd_path = dir.join("testbench.vcd");
    fs::write(&gv_path, verilog::write(&design))?;
    fs::write(&sdf_path, sdf.write())?;
    fs::write(
        &vcd_path,
        vcd::write(
            design.name(),
            names.iter().map(String::as_str).zip(stimuli.iter()),
        ),
    )?;
    println!("wrote inputs to {}", dir.display());

    // --- The GATSPI flow proper: files in, SAIF out.
    let netlist = verilog::parse(&fs::read_to_string(&gv_path)?, CellLibrary::industry_mini())?;
    let sdf = SdfFile::parse(&fs::read_to_string(&sdf_path)?)?;
    let graph = Arc::new(CircuitGraph::build(
        &netlist,
        Some(&sdf),
        &GraphOptions::default(),
    )?);
    let tb = vcd::parse(&fs::read_to_string(&vcd_path)?)?;
    let stimuli: Vec<Waveform> = graph
        .primary_inputs()
        .iter()
        .map(|&s| tb.signals[graph.signal_name(s)].clone())
        .collect();
    let duration = cycle * 200;

    let sim = Session::new(
        Arc::clone(&graph),
        SimConfig::default().with_window_align(cycle),
    );
    // Spill keeps the output-VCD dump below valid even for segmented runs.
    let result = sim.run_with(
        &stimuli,
        duration,
        &RunOptions::default().with_waveform_spill(),
    )?;

    let saif_path = dir.join("netlist_testbench.saif");
    fs::write(&saif_path, result.saif.write())?;
    println!(
        "simulated {} gates, {} total toggles -> {}",
        graph.n_gates(),
        result.total_toggles(),
        saif_path.display()
    );

    // Also dump the primary outputs as a VCD for waveform viewing.
    let out_names: Vec<String> = graph
        .primary_outputs()
        .iter()
        .map(|&s| graph.signal_name(s).to_string())
        .collect();
    let out_waves: Vec<Waveform> = graph
        .primary_outputs()
        .iter()
        .map(|&s| result.waveform(s.index()))
        .collect::<gatspi_core::Result<_>>()?;
    let out_vcd = dir.join("outputs.vcd");
    fs::write(
        &out_vcd,
        vcd::write(
            graph.name(),
            out_names.iter().map(String::as_str).zip(out_waves.iter()),
        ),
    )?;
    println!("output waveforms -> {}", out_vcd.display());
    Ok(())
}
