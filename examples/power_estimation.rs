//! Power estimation on an adder array: generate a workload, re-simulate
//! with GATSPI, estimate power from the SAIF, and break glitch power out.
//!
//! ```sh
//! cargo run --release --example power_estimation
//! ```

use std::sync::Arc;

use gatspi_core::{RunOptions, Session, SimConfig};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_power::glitch::classify;
use gatspi_power::PowerModel;
use gatspi_wave::Waveform;
use gatspi_workloads::circuits::int_adder_array;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 32-bit adders, 4 lanes, randomized SDF delays.
    let netlist = int_adder_array(32, 4);
    let sdf = attach_sdf(&netlist, &SdfGenConfig::default());
    let graph = Arc::new(CircuitGraph::build(
        &netlist,
        Some(&sdf),
        &GraphOptions::default(),
    )?);

    let cycle = 600;
    let cycles = 300;
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.8, 2024),
    );
    let duration = cycle * cycles as i32;

    let sim = Session::new(
        Arc::clone(&graph),
        SimConfig::default().with_window_align(cycle),
    );
    // Spill waveforms to host so the glitch attribution below keeps
    // working even if the arena forces a segmented run.
    let result = sim.run_with(
        &stimuli,
        duration,
        &RunOptions::default().with_waveform_spill(),
    )?;
    println!(
        "simulated {} gates x {} cycles: {} toggles, kernel {:.2} ms measured / {:.3} ms modeled-V100",
        graph.n_gates(),
        cycles,
        result.total_toggles(),
        result.kernel_profile.wall_seconds * 1e3,
        result.kernel_profile.modeled_seconds * 1e3,
    );

    // Activity-based power from the toggle counts.
    let model = PowerModel::default();
    let areas = PowerModel::areas_of(&netlist);
    let report = model.estimate(
        &graph,
        result.toggle_counts_slice(),
        &areas,
        i64::from(duration),
    );
    println!(
        "power: switching {:.3} uW + internal {:.3} uW + leakage {:.3} uW = {:.3} uW",
        report.switching_w * 1e6,
        report.internal_w * 1e6,
        report.leakage_w * 1e6,
        report.total_w() * 1e6
    );

    // Glitch attribution: carry chains glitch under skewed arrivals.
    let waveforms: Vec<Waveform> = (0..graph.n_signals())
        .map(|s| result.waveform(s))
        .collect::<gatspi_core::Result<_>>()?;
    let stats = classify(&waveforms, cycle, duration);
    println!(
        "glitch analysis: {} functional vs {} glitch toggles ({:.1}% of switching is glitch)",
        stats.total_functional(),
        stats.total_glitch(),
        stats.glitch_fraction() * 100.0
    );
    let worst = stats.worst_signals();
    for (sig, count) in worst.iter().take(5) {
        println!(
            "  worst glitcher: {} ({} glitch toggles)",
            graph.signal_name(gatspi_graph::SignalId(*sig as u32)),
            count
        );
    }
    Ok(())
}
