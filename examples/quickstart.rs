//! Quickstart: the whole GATSPI flow on a hand-written design.
//!
//! Mirrors the paper's Fig. 2 tool flow: structural Verilog + SDF in,
//! delay-aware re-simulation, SAIF out.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use gatspi_core::{Session, SimConfig};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{verilog, CellLibrary};
use gatspi_refsim::{EventSimulator, RefConfig};
use gatspi_sdf::SdfFile;
use gatspi_wave::Waveform;

const NETLIST_GV: &str = r#"
// A tiny glitchy cone: unequal path delays into an XOR.
module quickstart (a, b, y);
  input a, b;
  output y;
  wire n1, n2;
  INV  u1 (.A(a),  .Y(n1));
  BUF  u2 (.A(n1), .Y(n2));
  XOR2 u3 (.A(n2), .B(b), .Y(y));
endmodule
"#;

const NETLIST_SDF: &str = r#"
(DELAYFILE
  (DESIGN "quickstart")
  (TIMESCALE 1ps)
  (CELL (CELLTYPE "INV")  (INSTANCE u1) (DELAY (ABSOLUTE (IOPATH A Y (3) (4)))))
  (CELL (CELLTYPE "BUF")  (INSTANCE u2) (DELAY (ABSOLUTE (IOPATH A Y (5) (5)))))
  (CELL (CELLTYPE "XOR2") (INSTANCE u3) (DELAY (ABSOLUTE
    (IOPATH A Y (6) (6))
    (COND B===1'b1 (IOPATH A Y (4) (4)))
    (IOPATH B Y (7) (7))
  )))
)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Front end: parse netlist + SDF, translate to the flat graph.
    let netlist = verilog::parse(NETLIST_GV, CellLibrary::industry_mini())?;
    let sdf = SdfFile::parse(NETLIST_SDF)?;
    let graph = Arc::new(CircuitGraph::build(
        &netlist,
        Some(&sdf),
        &GraphOptions::default(),
    )?);
    println!(
        "design `{}`: {} gates, {} signals, {} logic levels",
        graph.name(),
        graph.n_gates(),
        graph.n_signals(),
        graph.n_levels()
    );

    // 2. Known input waveforms (re-simulation stimulus). Transitions sit
    //    off the engine's window boundaries (multiples of `window_align`),
    //    as register outputs do in practice (clk-to-q after the edge).
    let stimuli = vec![
        Waveform::from_toggles(false, &[105, 255, 405]), // a
        Waveform::from_toggles(true, &[225, 415]),       // b
    ];
    let duration = 500;

    // 3. Compile a re-simulation session (two-pass, cycle-parallel
    //    windows), then execute. The session caches its launch schedule,
    //    so re-simulating more stimuli against the same graph skips all
    //    preparation.
    let session = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_cycle_parallelism(4)
            .with_window_align(100),
    );
    let result = session.run(&stimuli, duration)?;

    // 4. Inspect waveforms and dump SAIF.
    let y = netlist.find_net("y").expect("y exists");
    let wave_y = result.waveform(y.index())?;
    println!(
        "\ny waveform (time, value): {:?}",
        wave_y.iter().collect::<Vec<_>>()
    );
    println!("\nSAIF:\n{}", result.saif.write());

    // 5. Verify against the event-driven reference (the paper's accuracy
    //    criterion: identical SAIF).
    let reference = EventSimulator::new(&graph, RefConfig::default()).run(&stimuli, duration)?;
    let diffs = result.saif.diff(&reference.saif);
    assert!(diffs.is_empty(), "SAIF mismatch: {diffs:?}");
    println!("verified: SAIF matches the event-driven reference bit-exactly");

    // 6. Re-simulate another stimulus on the same session: the cached
    //    launch plan is reused (this is the paper's many-stimuli regime).
    let stimuli2 = vec![
        Waveform::from_toggles(false, &[155, 305]),
        Waveform::from_toggles(true, &[125, 275, 425]),
    ];
    let again = session.run(&stimuli2, duration)?;
    let stats = session.plan_cache_stats();
    println!(
        "\nsecond stimulus: {} toggles; plan cache {} hit(s), {} build(s)",
        again.total_toggles(),
        stats.hits,
        stats.misses
    );
    Ok(())
}
